"""Configuration tests: Table 1 fidelity, validation, presets."""

import dataclasses

import pytest

from repro.config.machine import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    SCHEDULER_KINDS,
)
from repro.config.presets import paper_machine, small_machine, tiny_machine


class TestTable1Fidelity:
    """The default machine must be exactly the paper's Table 1."""

    def setup_method(self):
        self.cfg = paper_machine()

    def test_widths(self):
        assert self.cfg.fetch_width == 8
        assert self.cfg.issue_width == 8
        assert self.cfg.commit_width == 8
        assert self.cfg.dispatch_width == 8

    def test_fetch_limited_to_two_threads(self):
        assert self.cfg.fetch_threads_per_cycle == 2

    def test_window(self):
        assert self.cfg.rob_size == 96
        assert self.cfg.lsq_size == 48
        assert self.cfg.iq_size == 64  # "as specified"; default sweep point

    def test_physical_registers(self):
        assert self.cfg.int_phys_regs == 256
        assert self.cfg.fp_phys_regs == 256

    def test_functional_units(self):
        assert self.cfg.fu_int_alu == 8
        assert self.cfg.fu_int_muldiv == 4
        assert self.cfg.fu_mem_ports == 4
        assert self.cfg.fu_fp_add == 8
        assert self.cfg.fu_fp_muldiv == 4

    def test_l1i_geometry(self):
        l1i = self.cfg.mem.l1i
        assert l1i.size_bytes == 64 * 1024
        assert l1i.assoc == 2
        assert l1i.line_bytes == 128

    def test_l1d_geometry(self):
        l1d = self.cfg.mem.l1d
        assert l1d.size_bytes == 32 * 1024
        assert l1d.assoc == 4
        assert l1d.line_bytes == 256

    def test_l2_geometry(self):
        l2 = self.cfg.mem.l2
        assert l2.size_bytes == 2 * 1024 * 1024
        assert l2.assoc == 8
        assert l2.line_bytes == 512
        assert l2.hit_latency == 10

    def test_memory_latency(self):
        assert self.cfg.mem.memory_latency == 150

    def test_branch_predictor(self):
        bp = self.cfg.bp
        assert bp.gshare_entries == 2048
        assert bp.history_bits == 10
        assert bp.btb_entries == 2048
        assert bp.btb_assoc == 2

    def test_pipeline_structure(self):
        assert self.cfg.frontend_depth == 5
        assert self.cfg.regread_stages == 2


class TestSchedulerSelection:
    def test_default_is_traditional(self):
        assert paper_machine().scheduler == "traditional"

    @pytest.mark.parametrize("kind", SCHEDULER_KINDS)
    def test_all_kinds_accepted(self, kind):
        assert paper_machine(scheduler=kind).scheduler == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            paper_machine(scheduler="magic")

    def test_comparators_per_entry(self):
        assert paper_machine(scheduler="traditional").iq_comparators_per_entry == 2
        assert paper_machine(scheduler="2op_block").iq_comparators_per_entry == 1
        assert paper_machine(scheduler="2op_ooo").iq_comparators_per_entry == 1

    def test_uses_ooo_dispatch(self):
        assert not paper_machine(scheduler="2op_block").uses_ooo_dispatch
        assert paper_machine(scheduler="2op_ooo").uses_ooo_dispatch
        assert paper_machine(scheduler="2op_ooo_filtered").uses_ooo_dispatch


class TestValidation:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError, match="fetch_width"):
            MachineConfig(fetch_width=0)

    def test_bad_deadlock_mode_rejected(self):
        with pytest.raises(ValueError, match="deadlock_mode"):
            MachineConfig(deadlock_mode="pray")

    def test_bad_fetch_policy_rejected(self):
        with pytest.raises(ValueError, match="fetch_policy"):
            MachineConfig(fetch_policy="random")

    def test_cache_size_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheConfig(size_bytes=1000, assoc=2, line_bytes=64, hit_latency=1)

    def test_cache_line_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(size_bytes=1024, assoc=2, line_bytes=48, hit_latency=1)

    def test_cache_num_sets(self):
        cfg = CacheConfig(32 * 1024, 4, 256, 1)
        assert cfg.num_sets == 32

    def test_bp_validation(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(gshare_entries=1000)

    def test_memory_latency_positive(self):
        with pytest.raises(ValueError):
            MemoryConfig(memory_latency=0)


class TestReplaceAndHashing:
    def test_replace_returns_new_config(self):
        cfg = paper_machine()
        cfg2 = cfg.replace(iq_size=96)
        assert cfg2.iq_size == 96
        assert cfg.iq_size == 64
        assert cfg2 is not cfg

    def test_config_is_hashable_and_equal(self):
        assert paper_machine() == paper_machine()
        assert hash(paper_machine(iq_size=96)) == hash(paper_machine(iq_size=96))
        assert paper_machine(iq_size=96) != paper_machine(iq_size=64)

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_machine().iq_size = 1


class TestPresets:
    def test_small_machine_is_valid_and_smaller(self):
        cfg = small_machine()
        assert cfg.fetch_width < paper_machine().fetch_width
        assert cfg.iq_size < paper_machine().iq_size

    def test_tiny_machine_overrides(self):
        cfg = tiny_machine(iq_size=6, scheduler="2op_ooo")
        assert cfg.iq_size == 6
        assert cfg.scheduler == "2op_ooo"

    def test_presets_accept_scheduler(self):
        for preset in (paper_machine, small_machine):
            assert preset(scheduler="2op_block").scheduler == "2op_block"

"""In-text statistics drivers (scaled-down runs, structural checks)."""

import pytest

from repro.config.presets import small_machine
from repro.experiments.intext import (
    deadlock_mechanism_stats,
    dispatch_stall_stats,
    filtering_ablation,
    hdi_stats,
    residency_stats,
)

CFG = small_machine()
FAST = dict(max_insns=1200, seed=0, max_mixes=2)


class TestDispatchStallStats:
    def test_returns_all_thread_counts(self):
        cfg = CFG.replace(int_phys_regs=192, fp_phys_regs=192)
        stats = dispatch_stall_stats(iq_size=16, base_config=cfg, **FAST)
        assert set(stats) == {2, 3, 4}
        for v in stats.values():
            assert 0.0 <= v <= 1.0

    def test_traditional_never_stalls_on_2op(self):
        cfg = CFG.replace(int_phys_regs=192, fp_phys_regs=192)
        stats = dispatch_stall_stats(
            iq_size=16, scheduler="traditional", base_config=cfg,
            max_insns=1000, max_mixes=1,
        )
        assert stats[2] == 0.0


class TestHdiStats:
    def test_fields_in_range(self):
        s = hdi_stats(iq_size=16, num_threads=2, base_config=CFG, **FAST)
        assert 0.0 <= s.hdi_fraction <= 1.0
        assert 0.0 <= s.ooo_ndi_dependent_fraction <= 1.0
        assert s.ooo_dispatched_per_kinsn >= 0.0

    def test_hdis_dominate_piles(self):
        """The paper's ~90% HDI share: at this model's calibration the
        sampled dispatchable share behind NDIs must clearly dominate."""
        s = hdi_stats(iq_size=16, num_threads=2, base_config=CFG,
                      max_insns=2500, seed=0, max_mixes=3)
        assert s.hdi_fraction > 0.5


class TestFilteringAblation:
    def test_structure(self):
        out = filtering_ablation(iq_size=16, num_threads=2,
                                 base_config=CFG, **FAST)
        assert set(out) == {"2op_ooo", "2op_ooo_filtered", "filter_gain"}
        assert out["2op_ooo"] > 0

    def test_filter_gain_is_small(self):
        """Paper: idealized filtering only gains ~1.2%; the two variants
        must produce IPCs within a few percent of each other."""
        out = filtering_ablation(iq_size=16, num_threads=2,
                                 base_config=CFG, max_insns=2500, seed=0,
                                 max_mixes=3)
        assert abs(out["filter_gain"]) < 0.15


class TestResidencyStats:
    def test_structure(self):
        out = residency_stats(iq_size=16, num_threads=2,
                              base_config=CFG, **FAST)
        assert set(out) == {"traditional", "2op_block", "2op_ooo"}
        for v in out.values():
            assert v["mean_iq_residency"] >= 0

    def test_2op_designs_reduce_residency(self):
        """§5: keeping two-non-ready instructions out of the queue cuts
        the mean cycles an instruction occupies an IQ entry."""
        out = residency_stats(iq_size=16, num_threads=2, base_config=CFG,
                              max_insns=2500, seed=0, max_mixes=3)
        assert out["2op_ooo"]["mean_iq_residency"] < \
            out["traditional"]["mean_iq_residency"]


class TestDeadlockMechanismStats:
    def test_structure(self):
        cfg = CFG.replace(int_phys_regs=192, fp_phys_regs=192)
        out = deadlock_mechanism_stats(
            iq_size=8, num_threads=4, base_config=cfg,
            max_insns=1000, seed=0, max_mixes=1,
        )
        assert set(out) == {"buffer", "watchdog"}
        assert out["buffer"]["hmean_ipc"] > 0
        assert out["buffer"]["watchdog_flushes"] == 0
        assert out["watchdog"]["dab_inserts"] == 0

"""The repro.perf layer: bench encoding, the regression gate, and the
stage timers (which must observe without perturbing results)."""

import json

import pytest

from repro.config.presets import small_machine
from repro.experiments.runner import thread_traces
from repro.perf import (
    GATE_THRESHOLD,
    STAGE_NAMES,
    BenchResult,
    decode_bench_result,
    dumps_baseline,
    encode_bench_result,
    gate_check,
    install_stage_timers,
    load_baseline,
    run_bench,
    write_baseline,
)
from repro.pipeline.smt_core import SMTProcessor


def _result(**overrides):
    base = dict(
        benchmarks=("parser", "vortex"),
        scheduler="traditional",
        max_insns=4000,
        warmup=4000,
        reps=5,
        cycles=1230,
        committed=4604,
        best_elapsed_s=0.0123456789,
        cycles_per_s=99637.23456,
        insns_per_s=372923.98765,
    )
    base.update(overrides)
    return BenchResult(**base)


class TestEncoding:
    def test_round_trip_is_byte_identical(self):
        # The encode_job_result contract: encoding a fresh result and
        # re-encoding a decoded one produce the same bytes, so the
        # committed baseline never churns on float representation.
        fresh = _result()
        once = dumps_baseline(fresh)
        again = dumps_baseline(decode_bench_result(json.loads(once)))
        assert once == again

    def test_floats_are_normalised(self):
        # Ints smuggled into the float fields (e.g. a hand-edited
        # baseline) must encode exactly like their float forms.
        a = encode_bench_result(_result(cycles_per_s=50000,
                                        best_elapsed_s=1))
        b = encode_bench_result(_result(cycles_per_s=50000.0,
                                        best_elapsed_s=1.0))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert isinstance(a["cycles_per_s"], float)
        assert isinstance(a["best_elapsed_s"], float)

    def test_measured_floats_are_rounded(self):
        body = encode_bench_result(_result())
        assert body["cycles_per_s"] == 99637.2
        assert body["best_elapsed_s"] == 0.012346

    def test_counts_stay_ints(self):
        body = encode_bench_result(_result())
        for key in ("max_insns", "warmup", "reps", "cycles", "committed"):
            assert isinstance(body[key], int)

    def test_decode_inverts_encode(self):
        fresh = _result()
        decoded = decode_bench_result(encode_bench_result(fresh))
        assert decoded.benchmarks == fresh.benchmarks
        assert decoded.cycles == fresh.cycles
        assert decoded.cycles_per_s == pytest.approx(fresh.cycles_per_s,
                                                     abs=0.1)

    def test_baseline_file_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_sim_speed.json"
        fresh = _result()
        write_baseline(path, fresh)
        loaded = load_baseline(path)
        assert dumps_baseline(loaded) == path.read_text(encoding="utf-8")


class TestGate:
    def test_passes_when_faster(self):
        report = gate_check(120.0, 100.0)
        assert report.passed
        assert report.ratio == pytest.approx(1.2)

    def test_passes_within_threshold(self):
        assert gate_check(86.0, 100.0).passed

    def test_fails_past_threshold(self):
        report = gate_check(80.0, 100.0)
        assert not report.passed
        assert "REGRESSION" in report.render()

    def test_threshold_is_inclusive(self):
        assert gate_check(85.0, 100.0, threshold=0.85).passed

    def test_default_threshold_allows_15_percent(self):
        assert GATE_THRESHOLD == pytest.approx(0.85)

    def test_zero_baseline_passes_vacuously(self):
        # A fresh checkout without a blessed number never hard-fails.
        assert gate_check(100.0, 0.0).passed


class TestBenchAndTimers:
    def test_run_bench_smoke(self):
        result = run_bench(benchmarks=("parser",), max_insns=300,
                           warmup=100, reps=1)
        assert result.cycles > 0
        assert result.committed > 0
        assert result.cycles_per_s > 0
        assert result.best_elapsed_s > 0

    def test_stage_timers_do_not_change_results(self):
        cfg = small_machine(scheduler="2op_ooo")
        traces = thread_traces(["parser", "vortex"], 600, seed=0,
                               warmup=200)
        plain = SMTProcessor(cfg, traces, warmup=200).run(600)
        timed_core = SMTProcessor(cfg, traces, warmup=200)
        seconds = install_stage_timers(timed_core)
        timed = timed_core.run(600)
        assert timed == plain
        assert set(seconds) == set(STAGE_NAMES)
        assert all(v >= 0.0 for v in seconds.values())
        # The loop stepped real cycles, so the busiest stages measured
        # something.
        assert sum(seconds.values()) > 0.0


class TestGateCLI:
    """The ``python -m repro.perf gate`` entry point end to end, against
    a tiny baseline config so each re-measurement takes milliseconds."""

    def _baseline(self, tmp_path, cycles_per_s):
        path = tmp_path / "BENCH_sim_speed.json"
        write_baseline(path, _result(
            benchmarks=("parser",), max_insns=300, warmup=100,
            cycles_per_s=cycles_per_s,
        ))
        return path

    def test_gate_passes_against_slow_baseline(self, tmp_path, capsys):
        from repro.perf.__main__ import main
        path = self._baseline(tmp_path, cycles_per_s=1.0)
        rc = main(["gate", "--baseline", str(path), "--reps", "1"])
        assert rc == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_gate_missing_baseline_is_usage_error(self, tmp_path, capsys):
        from repro.perf.__main__ import main
        rc = main(["gate", "--baseline", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "no baseline" in capsys.readouterr().err

    def test_gate_retries_then_fails_on_real_regression(self, tmp_path,
                                                        capsys):
        # An absurdly fast baseline is unreachable in every measurement
        # window, so the retry fires and the gate still (correctly)
        # fails.
        from repro.perf.__main__ import main
        path = self._baseline(tmp_path, cycles_per_s=1e12)
        rc = main(["gate", "--baseline", str(path), "--reps", "1",
                   "--retries", "1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "re-measuring" in captured.err
        assert "REGRESSION" in captured.out

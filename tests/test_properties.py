"""Property-based tests (hypothesis) on core data structures and
end-to-end simulator invariants."""

from collections import OrderedDict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.branch.gshare import GShare
from repro.config.machine import CacheConfig
from repro.config.presets import tiny_machine
from repro.core.iq import IssueQueue
from repro.isa.opcodes import OpClass
from repro.memory.cache import SetAssociativeCache
from repro.metrics.aggregate import geometric_mean, harmonic_mean
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.smt_core import SMTProcessor
from repro.rename.free_list import FreeList
from repro.trace.generator import Trace
from repro.util.rng import derive_seed

# ---------------------------------------------------------------------------
# aggregation properties
# ---------------------------------------------------------------------------

positive_floats = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12
)


class TestMeanProperties:
    @given(positive_floats)
    def test_hmean_le_gmean_le_amean(self, vals):
        h = harmonic_mean(vals)
        g = geometric_mean(vals)
        a = sum(vals) / len(vals)
        assert h <= g * (1 + 1e-9)
        assert g <= a * (1 + 1e-9)

    @given(positive_floats)
    def test_means_bounded_by_extremes(self, vals):
        for mean in (harmonic_mean(vals), geometric_mean(vals)):
            assert min(vals) * (1 - 1e-9) <= mean <= max(vals) * (1 + 1e-9)

    @given(positive_floats, st.floats(min_value=0.1, max_value=10.0))
    def test_hmean_scales_linearly(self, vals, k):
        scaled = harmonic_mean([v * k for v in vals])
        assert scaled == pytest.approx(harmonic_mean(vals) * k, rel=1e-6)


# ---------------------------------------------------------------------------
# free list round trip
# ---------------------------------------------------------------------------

class TestFreeListProperties:
    @given(st.lists(st.booleans(), max_size=60))
    def test_alloc_release_conservation(self, ops):
        fl = FreeList(0, 8)
        held: list[int] = []
        for do_alloc in ops:
            if do_alloc and len(fl):
                held.append(fl.allocate())
            elif held:
                fl.release(held.pop())
        assert len(fl) + len(held) == 8
        assert len(set(held)) == len(held)  # no double allocation


# ---------------------------------------------------------------------------
# cache vs reference model
# ---------------------------------------------------------------------------

class ReferenceLru:
    """Oracle: dict-of-OrderedDict LRU cache."""

    def __init__(self, num_sets, assoc, line):
        self.num_sets, self.assoc, self.line = num_sets, assoc, line
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, addr):
        block = addr // self.line
        s = self.sets[block % self.num_sets]
        tag = block // self.num_sets
        hit = tag in s
        if hit:
            s.move_to_end(tag)
        else:
            s[tag] = True
            if len(s) > self.assoc:
                s.popitem(last=False)
        return hit


class TestCacheMatchesReference:
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=300))
    @settings(max_examples=60)
    def test_hit_miss_sequence_identical(self, addrs):
        cache = SetAssociativeCache(CacheConfig(512, 2, 64, 1))  # 4 sets
        ref = ReferenceLru(num_sets=4, assoc=2, line=64)
        for a in addrs:
            assert cache.access(a) == ref.access(a)


# ---------------------------------------------------------------------------
# issue queue vs brute-force readiness
# ---------------------------------------------------------------------------

def _di(seq, src1, src2):
    d = DynInstr(tid=0, seq=seq, tseq=seq, op=int(OpClass.IALU), pc=0,
                 addr=0, taken=False, target=0, dest_l=-1, src1_l=-1,
                 src2_l=-1, fetch_cycle=0)
    d.src1_p = src1
    d.src2_p = src2
    return d


class TestIssueQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-1, 7), st.integers(-1, 7)),
            min_size=1, max_size=16,
        ),
        st.lists(st.integers(0, 7), max_size=8, unique=True),
    )
    @settings(max_examples=80)
    def test_ready_set_matches_brute_force(self, sources, wake_order):
        ready_bits = bytearray(8)
        iq = IssueQueue(32, 2, ready_bits)
        instrs = [_di(i, s1, s2) for i, (s1, s2) in enumerate(sources)]
        for d in instrs:
            iq.insert(d, 0)
        for tag in wake_order:
            ready_bits[tag] = 1
            iq.wakeup(tag)
        expected = [
            d for d in instrs
            if all(p < 0 or ready_bits[p] for p in (d.src1_p, d.src2_p))
        ]
        got = iq.drain_ready()
        assert got == sorted(expected, key=lambda d: d.seq)


# ---------------------------------------------------------------------------
# gshare sanity under arbitrary outcome streams
# ---------------------------------------------------------------------------

class TestGShareProperties:
    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    max_size=200))
    @settings(max_examples=40)
    def test_never_crashes_and_counts_consistently(self, stream):
        g = GShare(64, 5)
        for pc, taken in stream:
            pred, tok = g.predict(pc << 2)
            g.update(tok, taken, pred)
        assert g.lookups == len(stream)
        assert 0 <= g.hits <= g.lookups


# ---------------------------------------------------------------------------
# end-to-end simulator invariants on random tiny traces
# ---------------------------------------------------------------------------

op_strategy = st.sampled_from([
    OpClass.IALU, OpClass.IALU, OpClass.IALU, OpClass.LOAD, OpClass.STORE,
    OpClass.IMUL, OpClass.BRANCH,
])


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=4, max_value=60))
    rows = []
    writable = list(range(0, 8))
    written: list[int] = []
    for i in range(n):
        op = draw(op_strategy)
        src1 = draw(st.sampled_from(written)) if written and draw(
            st.booleans()) else -1
        src2 = draw(st.sampled_from(written)) if written and draw(
            st.booleans()) else -1
        dest = -1
        if op in (OpClass.IALU, OpClass.IMUL, OpClass.LOAD):
            dest = draw(st.sampled_from(writable))
            written.append(dest)
        addr = draw(st.integers(0, 2 ** 14)) & ~7 \
            if op in (OpClass.LOAD, OpClass.STORE) else 0
        taken = draw(st.booleans()) if op is OpClass.BRANCH else False
        target = (draw(st.integers(0, n - 1)) * 4) if taken else 0
        rows.append((int(op), dest, src1, src2, i * 4, addr, taken, target))
    return Trace(
        name="random", seed=0,
        op=[r[0] for r in rows], dest=[r[1] for r in rows],
        src1=[r[2] for r in rows], src2=[r[3] for r in rows],
        pc=[r[4] for r in rows], addr=[r[5] for r in rows],
        taken=[r[6] for r in rows], target=[r[7] for r in rows],
        warm_addrs=[], warm_pcs=list(range(0, 256, 64)),
    )


class TestSimulatorProperties:
    @given(random_trace(), st.sampled_from(
        ["traditional", "2op_block", "2op_ooo", "2op_ooo_filtered"]))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_trace_completes_with_invariants(self, trace, scheduler):
        """Every random program must commit fully, under every scheduler,
        with structural invariants intact — no deadlock, no leak."""
        cfg = tiny_machine(scheduler=scheduler)
        core = SMTProcessor(cfg, [trace])
        guard = 0
        while not core.threads[0].drained:
            core.step()
            guard += 1
            if guard % 16 == 0:
                core.validate()
            assert guard < 60_000, "simulation failed to drain"
        core.validate()
        assert core.stats.committed_total == len(trace.op)
        assert core.stats.fetched == len(trace.op)

    @given(random_trace())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_schedulers_commit_identical_architectural_work(self, trace):
        counts = set()
        for scheduler in ("traditional", "2op_block", "2op_ooo"):
            core = SMTProcessor(tiny_machine(scheduler=scheduler), [trace])
            stats = core.run(max_insns=10_000)
            counts.add(stats.committed_total)
        assert len(counts) == 1

"""Fault-injection tests for the runtime pipeline sanitizer.

Each test corrupts one microarchitectural structure mid-run and asserts
the sanitizer raises a :class:`SanitizerViolation` naming exactly the
invariant that was broken. A clean run under every scheduler must pass
all checks and leave the simulation results bit-identical to an
unsanitized run.
"""

from __future__ import annotations

import pytest

from repro.analysis.contracts import RESOURCES, STAGE_CALLABLES
from repro.analysis.sanitizer import (
    _RESOURCE_PROBES,
    INVARIANTS,
    PipelineSanitizer,
    SanitizerViolation,
)
from repro.config.machine import SCHEDULER_KINDS
from repro.config.presets import small_machine
from repro.experiments.cli import build_parser
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.smt_core import SMTProcessor
from tests.trace_builder import TraceBuilder


def serial_trace(n: int = 400):
    """A fully serial single-cycle chain: keeps ROB and IQ populated."""
    tb = TraceBuilder()
    for i in range(n):
        tb.ialu(dest=1 + (i % 8), src1=1 + ((i - 1) % 8) if i else -1)
    return tb.build()


def make_core(scheduler: str = "2op_ooo", **overrides) -> SMTProcessor:
    overrides = {"sanitize": True, "sanitize_interval": 8, **overrides}
    cfg = small_machine(scheduler=scheduler).replace(**overrides)
    return SMTProcessor(cfg, [serial_trace(), serial_trace()])


def step_until(core: SMTProcessor, pred, limit: int = 3000) -> None:
    for _ in range(limit):
        core.step()
        if pred(core):
            return
    raise AssertionError("pipeline never reached the required state")


def iq_resident(core: SMTProcessor) -> list[DynInstr]:
    return [i for ts in core.threads for i in ts.rob if i.in_iq]


def iq_waiting(core: SMTProcessor) -> list[DynInstr]:
    return [i for i in iq_resident(core) if i.num_waiting > 0]


def fake_instr(tseq: int = 10 ** 6) -> DynInstr:
    return DynInstr(
        tid=0, seq=tseq, tseq=tseq, op=int(OpClass.IALU), pc=0, addr=0,
        taken=False, target=0, dest_l=1, src1_l=2, src2_l=-1, fetch_cycle=0,
    )


def expect_violation(core: SMTProcessor, invariant: str) -> SanitizerViolation:
    with pytest.raises(SanitizerViolation) as excinfo:
        core.sanitizer.check(core.cycle)
    violation = excinfo.value
    assert violation.invariant == invariant
    assert violation.cycle == core.cycle
    return violation


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("scheduler", SCHEDULER_KINDS)
    def test_every_scheduler_passes_sanitized(self, scheduler):
        core = make_core(scheduler=scheduler)
        stats = core.run(300)
        assert stats.committed_total >= 300
        assert stats.sanitizer_checks > 0

    def test_watchdog_mode_passes_sanitized(self):
        core = SMTProcessor(
            small_machine(scheduler="2op_ooo").replace(
                sanitize=True, sanitize_interval=8,
                deadlock_mode="watchdog",
            ),
            [serial_trace()],
        )
        stats = core.run(300)
        assert stats.sanitizer_checks > 0

    def test_sanitizer_does_not_perturb_results(self):
        plain = SMTProcessor(small_machine(), [serial_trace(),
                                               serial_trace()]).run(300)
        checked = make_core().run(300)
        plain_d = plain.as_dict()
        checked_d = checked.as_dict()
        assert plain_d.pop("sanitizer_checks") == 0
        assert checked_d.pop("sanitizer_checks") > 0
        assert plain_d == checked_d

    def test_disabled_config_builds_no_sanitizer(self):
        core = SMTProcessor(small_machine(), [serial_trace()])
        assert core.sanitizer is None
        assert core.run(100).sanitizer_checks == 0

    def test_interval_respected(self):
        core = make_core(sanitize_interval=16)
        stats = core.run(300)
        assert 0 < stats.sanitizer_checks <= stats.cycles // 16 + 1


# ----------------------------------------------------------------------
# the violation object
# ----------------------------------------------------------------------
class TestViolationObject:
    def test_structured_fields_and_message(self):
        instr = fake_instr()
        v = SanitizerViolation("iq-capacity", cycle=42, tid=1, instr=instr,
                               detail="broke it")
        assert v.invariant == "iq-capacity"
        assert v.cycle == 42
        assert v.tid == 1
        assert v.instr is instr
        text = str(v)
        assert "iq-capacity" in text and "42" in text and "broke it" in text

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError):
            SanitizerViolation("made-up", cycle=0)

    def test_all_invariants_constructible(self):
        for name in INVARIANTS:
            assert SanitizerViolation(name, cycle=1).invariant == name


# ----------------------------------------------------------------------
# fault injection — one test per invariant
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_rob_program_order(self):
        core = make_core()
        step_until(core, lambda c: len(c.threads[0].rob) >= 2)
        rob = core.threads[0].rob
        entries = rob._entries
        entries[0], entries[1] = entries[1], entries[0]
        expect_violation(core, "rob-program-order")

    def test_rename_program_order(self):
        core = make_core()
        step_until(core, lambda c: len(c.threads[0].rob) >= 2)
        entries = list(core.threads[0].rob)
        entries[1].rename_cycle = max(entries[0].rename_cycle - 1, 0)
        entries[0].rename_cycle = entries[1].rename_cycle + 5
        v = expect_violation(core, "rename-program-order")
        assert v.tid == 0

    def test_lsq_alloc_order_flag(self):
        core = make_core()
        core.step()
        core.threads[1].lsq.alloc_order_ok = False
        v = expect_violation(core, "lsq-alloc-order")
        assert v.tid == 1

    def test_lsq_occupancy_bounds(self):
        core = make_core()
        core.step()
        core.threads[0].lsq.count = core.threads[0].lsq.capacity + 3
        expect_violation(core, "lsq-alloc-order")

    def test_lsq_tracks_out_of_order_allocation(self):
        lsq = SMTProcessor(small_machine(), [serial_trace()]).threads[0].lsq
        older, younger = fake_instr(tseq=3), fake_instr(tseq=7)
        lsq.allocate(younger)
        assert lsq.alloc_order_ok
        lsq.allocate(older)
        assert not lsq.alloc_order_ok
        lsq.reset()
        assert lsq.alloc_order_ok

    def test_iq_capacity_overflow(self):
        core = make_core()
        step_until(core, lambda c: c.iq.occupancy > 0)
        core.iq.occupancy = core.iq.capacity + 1
        expect_violation(core, "iq-capacity")

    def test_iq_occupancy_counter_mismatch(self):
        core = make_core()
        step_until(core, lambda c: c.iq.occupancy > 1)
        core.iq.occupancy -= 1
        expect_violation(core, "iq-capacity")

    def test_iq_one_comparator(self):
        core = make_core(scheduler="2op_ooo")
        step_until(core, lambda c: bool(iq_resident(c)))
        instr = iq_resident(core)[0]
        instr.num_waiting = 2
        v = expect_violation(core, "iq-one-comparator")
        assert v.instr is instr

    def test_iq_dab_exclusion_dual_residency(self):
        core = make_core()
        step_until(core, lambda c: bool(iq_resident(c)))
        instr = iq_resident(core)[0]
        instr.in_dab = True
        v = expect_violation(core, "iq-dab-exclusion")
        assert v.instr is instr

    def test_dab_overflow(self):
        core = make_core()
        core.step()
        for tseq in (10 ** 6, 10 ** 6 + 1):
            bogus = fake_instr(tseq)
            bogus.in_dab = True
            core.dab.entries.append(bogus)
        expect_violation(core, "iq-dab-exclusion")

    def test_dab_entry_with_unready_source(self):
        core = make_core(deadlock_buffer_size=4)
        step_until(core, lambda c: bool(iq_waiting(c)))
        pending_tag = core.iq.nonready_sources(iq_waiting(core)[0])[0]
        bogus = fake_instr()
        bogus.in_dab = True
        bogus.src1_p = pending_tag
        core.dab.entries.append(bogus)
        v = expect_violation(core, "iq-dab-exclusion")
        assert v.instr is bogus

    def test_wakeup_registration_mismatch(self):
        core = make_core()
        step_until(core, lambda c: bool(iq_waiting(c)))
        instr = iq_waiting(core)[0]
        for tag, waiters in list(core.iq.waiting.items()):
            core.iq.waiting[tag] = [w for w in waiters if w is not instr]
        v = expect_violation(core, "wakeup-consistency")
        assert v.instr is instr

    def test_waiting_on_ready_tag(self):
        core = make_core()
        step_until(core, lambda c: bool(iq_waiting(c)))
        instr = iq_waiting(core)[0]
        for tag in core.iq.nonready_sources(instr):
            core.renamer.ready[tag] = 1
        v = expect_violation(core, "wakeup-consistency")
        assert v.invariant == "wakeup-consistency"

    def test_issue_starvation(self):
        core = make_core(sanitize_starvation_bound=1)
        step_until(core, lambda c: bool(iq_waiting(c)) and c.cycle > 10)
        instr = iq_waiting(core)[0]
        for tag, waiters in list(core.iq.waiting.items()):
            core.iq.waiting[tag] = [w for w in waiters if w is not instr]
        instr.num_waiting = 0
        instr.dispatch_cycle = 0
        v = expect_violation(core, "issue-starvation")
        assert v.instr is instr

    def test_commit_total_regression(self):
        core = make_core()
        step_until(core, lambda c: c.stats.committed_total > 2)
        core.sanitizer.check(core.cycle)  # records the commit watermark
        core.stats.committed_total -= 2
        core.stats.committed[0] -= 2
        expect_violation(core, "commit-monotonicity")

    def test_commit_sum_mismatch(self):
        core = make_core()
        step_until(core, lambda c: c.stats.committed_total > 0)
        core.stats.committed[0] += 3
        expect_violation(core, "commit-monotonicity")

    def test_per_thread_commit_regression(self):
        core = make_core()
        step_until(core, lambda c: min(c.stats.committed) > 1)
        core.sanitizer.check(core.cycle)
        core.stats.committed[1] -= 1
        core.stats.committed_total -= 1
        expect_violation(core, "commit-monotonicity")

    def test_violation_raised_from_step(self):
        core = make_core(sanitize_interval=1)
        step_until(core, lambda c: len(c.threads[0].rob) >= 2)
        entries = core.threads[0].rob._entries
        entries[0], entries[1] = entries[1], entries[0]
        with pytest.raises(SanitizerViolation):
            for _ in range(4):
                core.step()


# ----------------------------------------------------------------------
# wiring
# ----------------------------------------------------------------------
class TestWiring:
    def test_cli_exposes_sanitize_flag(self):
        args = build_parser().parse_args(
            ["mix", "parser", "vortex", "--sanitize"]
        )
        assert args.sanitize is True
        args = build_parser().parse_args(["mix", "parser"])
        assert args.sanitize is False

    def test_sanitizer_constructed_from_config(self):
        core = make_core()
        assert isinstance(core.sanitizer, PipelineSanitizer)
        assert core.sanitizer.interval == 8


# ----------------------------------------------------------------------
# stage-contract shadow checks
# ----------------------------------------------------------------------
class TestStageContracts:
    def test_wrappers_installed_on_every_stage_callable(self):
        core = make_core()
        for attr in STAGE_CALLABLES:
            assert getattr(core, attr).__name__ == "checked", attr

    def test_clean_run_performs_contract_checks(self):
        core = make_core()
        stats = core.run(300)
        assert core.sanitizer.contract_checks > 0
        # The counter lives on the sanitizer, not in PipelineStats: the
        # sanitizer must not perturb the stats block it is checking.
        assert "contract_checks" not in stats.as_dict()

    def test_probes_cover_every_dynamic_resource(self):
        # stats (every stage counts), instr (too wide per interval) and
        # config (frozen) are left to the static pass; everything else
        # must have a fingerprint probe.
        assert set(_RESOURCE_PROBES) == (
            set(RESOURCES) - {"stats", "instr", "config"}
        )

    def _core_with_rogue_stage(self, attr: str, mutate) -> SMTProcessor:
        """A core whose ``attr`` stage callable also runs ``mutate``,
        wrapped by manually installed contract checks (same order as
        ``SMTProcessor.__init__``: cache, corrupt, then install)."""
        core = SMTProcessor(
            small_machine(scheduler="2op_ooo").replace(sanitize_interval=8),
            [serial_trace(), serial_trace()],
        )
        inner = getattr(core, attr)

        def rogue(*args):
            result = inner(*args)
            mutate(core)
            return result

        setattr(core, attr, rogue)
        sanitizer = PipelineSanitizer(core)
        sanitizer.install_contract_checks()
        return core

    def _expect_contract_violation(self, core: SMTProcessor,
                                   stage: str, resource: str) -> None:
        with pytest.raises(SanitizerViolation) as excinfo:
            for _ in range(16):
                core.step()
        violation = excinfo.value
        assert violation.invariant == "stage-contract"
        assert f"stage '{stage}'" in violation.detail
        assert f"'{resource}'" in violation.detail

    def test_commit_mutating_iq_is_caught(self):
        core = self._core_with_rogue_stage(
            "_commit",
            lambda c: c.iq.ready_heap.append((1 << 30, 1 << 30, 0)),
        )
        self._expect_contract_violation(core, "commit", "iq")

    def test_rename_mutating_fu_is_caught(self):
        def bump_fu(c):
            c.fu.issued_per_class[0] += 1

        core = self._core_with_rogue_stage("_rename", bump_fu)
        self._expect_contract_violation(core, "rename", "fu")

    def test_dispatch_mutating_free_list_is_caught(self):
        core = self._core_with_rogue_stage(
            "_dispatch",
            lambda c: c.renamer.int_free._free.append(0),
        )
        self._expect_contract_violation(core, "dispatch", "free_list")

"""Golden-shape regression tests.

These pin the calibrated model's headline reproduction results (see
EXPERIMENTS.md) with loose tolerances, so future changes to the trace
generator or pipeline that silently destroy a paper-level result fail
the test suite rather than only the (slow) benchmark harness.

All runs here use 2-thread mixes at reduced scale to stay fast; the
asserted quantities were chosen for their stability across windows.
"""

import pytest

from repro.config.presets import paper_machine
from repro.experiments.runner import simulate_mix
from repro.metrics.aggregate import harmonic_mean
from repro.workloads.mixes import TWO_THREAD_MIXES

SCALE = dict(max_insns=4000, seed=0)
MIXES = TWO_THREAD_MIXES[:4]


@pytest.fixture(scope="module")
def grid():
    out = {}
    for sched in ("traditional", "2op_block", "2op_ooo"):
        for iq in (32, 64):
            cfg = paper_machine(iq_size=iq, scheduler=sched)
            out[(sched, iq)] = [
                simulate_mix(m.benchmarks, cfg, **SCALE) for m in MIXES
            ]
    return out


def hmean_ipc(grid, sched, iq):
    return harmonic_mean([r.throughput_ipc for r in grid[(sched, iq)]])


class TestHeadlineShapes:
    def test_2op_block_loses_on_two_threads(self, grid):
        """Paper §3: 2OP_BLOCK degrades 2-thread throughput at every IQ
        size (about -19% at 64 entries)."""
        for iq in (32, 64):
            ratio = hmean_ipc(grid, "2op_block", iq) / \
                hmean_ipc(grid, "traditional", iq)
            assert ratio < 0.97, f"2op_block/traditional @{iq} = {ratio:.3f}"

    def test_ooo_rescues_2op_block(self, grid):
        """Paper headline: +22% over 2OP_BLOCK at 64 entries (ours must
        show at least a double-digit recovery)."""
        ratio = hmean_ipc(grid, "2op_ooo", 64) / \
            hmean_ipc(grid, "2op_block", 64)
        assert ratio > 1.08, f"2op_ooo/2op_block @64 = {ratio:.3f}"

    def test_ooo_tracks_traditional(self, grid):
        """Paper: OOO dispatch stays within a few percent of the
        traditional scheduler on 2-thread workloads."""
        for iq in (32, 64):
            ratio = hmean_ipc(grid, "2op_ooo", iq) / \
                hmean_ipc(grid, "traditional", iq)
            assert ratio > 0.93, f"2op_ooo/traditional @{iq} = {ratio:.3f}"

    def test_stall_fraction_band(self, grid):
        """Paper §3: ~43% of 2-thread cycles all-blocked under 2OP_BLOCK
        at 64 entries; the calibrated model must stay in a wide band
        around that."""
        fracs = [
            r.extra("all_blocked_2op_fraction")
            for r in grid[("2op_block", 64)]
        ]
        mean = sum(fracs) / len(fracs)
        assert 0.2 < mean < 0.65, f"2op_block stall fraction = {mean:.3f}"

    def test_ooo_collapses_stalls(self, grid):
        block = [
            r.extra("all_blocked_2op_fraction")
            for r in grid[("2op_block", 64)]
        ]
        ooo = [
            r.extra("all_blocked_2op_fraction")
            for r in grid[("2op_ooo", 64)]
        ]
        assert sum(ooo) < 0.5 * sum(block)

    def test_hdi_fraction_band(self, grid):
        """Paper §4: ~90% of piled-up instructions are HDIs."""
        fracs = [
            r.extra("hdi_fraction") for r in grid[("2op_block", 64)]
        ]
        mean = sum(fracs) / len(fracs)
        assert mean > 0.7, f"hdi fraction = {mean:.3f}"

    def test_residency_drops_under_2op_designs(self, grid):
        trad = harmonic_mean([
            r.extra("mean_iq_residency") for r in grid[("traditional", 64)]
        ])
        ooo = harmonic_mean([
            r.extra("mean_iq_residency") for r in grid[("2op_ooo", 64)]
        ])
        assert ooo < trad


class TestIpcBands:
    """Class-level IPC bands of the calibrated profiles (these feed the
    Tables 2-4 classification; see trace/classify.py thresholds)."""

    @pytest.mark.parametrize("bench,lo,hi", [
        ("mcf", 0.02, 0.6),
        ("equake", 0.2, 0.8),
        ("ammp", 0.8, 2.3),
        ("fma3d", 0.8, 2.3),
        ("gzip", 2.3, 6.0),
        ("mgrid", 2.3, 6.0),
    ])
    def test_solo_ipc_band(self, bench, lo, hi):
        r = simulate_mix([bench], paper_machine(), max_insns=6000, seed=0)
        assert lo < r.throughput_ipc < hi, (
            f"{bench} IPC {r.throughput_ipc:.3f} outside [{lo}, {hi}] — "
            "profile calibration drifted; reclassify before trusting the "
            "figure benches"
        )

"""ISA model tests: op classes, latencies, registers, instructions."""

import pytest

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import (
    FU_ASSIGNMENT,
    FUClass,
    OpClass,
    execution_latency,
    fu_for_op,
    issue_interval,
)
from repro.isa.registers import (
    FP_BASE,
    NO_REG,
    NUM_LOGICAL_REGS,
    REG_FP_ZERO,
    REG_INT_ZERO,
    is_fp_reg,
    is_zero_reg,
    reg_class,
)


class TestLatencyTable:
    """Latencies must match Table 1 of the paper."""

    @pytest.mark.parametrize("op,fu,lat,interval", [
        (OpClass.IALU, FUClass.INT_ALU, 1, 1),
        (OpClass.IMUL, FUClass.INT_MULDIV, 3, 1),
        (OpClass.IDIV, FUClass.INT_MULDIV, 20, 19),
        (OpClass.LOAD, FUClass.MEM_PORT, 2, 1),
        (OpClass.STORE, FUClass.MEM_PORT, 2, 1),
        (OpClass.FPADD, FUClass.FP_ADD, 2, 1),
        (OpClass.FPMUL, FUClass.FP_MULDIV, 4, 1),
        (OpClass.FPDIV, FUClass.FP_MULDIV, 12, 12),
        (OpClass.FPSQRT, FUClass.FP_MULDIV, 24, 24),
        (OpClass.BRANCH, FUClass.INT_ALU, 1, 1),
    ])
    def test_assignment(self, op, fu, lat, interval):
        assert fu_for_op(op) is fu
        assert execution_latency(op) == lat
        assert issue_interval(op) == interval

    def test_every_op_has_assignment(self):
        for op in OpClass:
            assert op in FU_ASSIGNMENT


class TestRegisters:
    def test_partition(self):
        assert NUM_LOGICAL_REGS == 64
        assert FP_BASE == 32

    def test_zero_registers(self):
        assert is_zero_reg(REG_INT_ZERO)
        assert is_zero_reg(REG_FP_ZERO)
        assert not is_zero_reg(0)
        assert not is_zero_reg(FP_BASE)

    def test_reg_class(self):
        assert reg_class(0) == 0
        assert reg_class(FP_BASE) == 1
        assert is_fp_reg(FP_BASE)
        assert not is_fp_reg(FP_BASE - 1)


class TestTraceInstruction:
    def test_flags(self):
        ld = TraceInstruction(op=OpClass.LOAD, dest=3, src1=4, addr=128)
        assert ld.is_load and ld.is_mem and not ld.is_store
        st = TraceInstruction(op=OpClass.STORE, src1=3, src2=4, addr=64)
        assert st.is_store and st.is_mem and not st.is_load
        br = TraceInstruction(op=OpClass.BRANCH, src1=1, taken=True, target=4)
        assert br.is_branch and not br.is_mem

    def test_num_reg_sources_excludes_zero_and_missing(self):
        i = TraceInstruction(op=OpClass.IALU, dest=1, src1=2, src2=3)
        assert i.num_reg_sources() == 2
        i = TraceInstruction(op=OpClass.IALU, dest=1, src1=2, src2=NO_REG)
        assert i.num_reg_sources() == 1
        i = TraceInstruction(op=OpClass.IALU, dest=1, src1=REG_INT_ZERO,
                             src2=NO_REG)
        assert i.num_reg_sources() == 0

    def test_frozen(self):
        i = TraceInstruction(op=OpClass.IALU)
        with pytest.raises(Exception):
            i.dest = 5

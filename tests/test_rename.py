"""Register renaming tests: free lists, map tables, rename unit."""

import pytest

from repro.config.presets import small_machine, tiny_machine
from repro.isa.registers import FP_BASE, NO_REG, REG_INT_ZERO
from repro.rename.free_list import FreeList
from repro.rename.map_table import NO_PREG, RenameMapTable
from repro.rename.renamer import RenameUnit


class TestFreeList:
    def test_allocate_release_roundtrip(self):
        fl = FreeList(0, 4)
        regs = [fl.allocate() for _ in range(4)]
        assert sorted(regs) == [0, 1, 2, 3]
        assert len(fl) == 0
        with pytest.raises(IndexError):
            fl.allocate()
        fl.release(regs[0])
        assert fl.allocate() == regs[0]

    def test_release_out_of_range(self):
        fl = FreeList(10, 4)
        with pytest.raises(ValueError):
            fl.release(3)

    def test_owns(self):
        fl = FreeList(10, 4)
        assert fl.owns(10) and fl.owns(13)
        assert not fl.owns(9) and not fl.owns(14)

    def test_capacity(self):
        assert FreeList(5, 7).capacity == 7

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            FreeList(0, 0)


class TestMapTable:
    def test_initial_mappings_empty(self):
        t = RenameMapTable()
        assert t.lookup(0) == NO_PREG
        assert t.lookup(NO_REG) == NO_PREG

    def test_remap_returns_old(self):
        t = RenameMapTable()
        assert t.remap(3, 100) == NO_PREG
        assert t.remap(3, 101) == 100
        assert t.lookup(3) == 101

    def test_zero_register_pinned(self):
        t = RenameMapTable()
        with pytest.raises(ValueError):
            t.remap(REG_INT_ZERO, 5)

    def test_mappings_snapshot_is_copy(self):
        t = RenameMapTable()
        snap = t.mappings()
        snap[0] = 42
        assert t.lookup(0) == NO_PREG


class TestRenameUnit:
    def _unit(self, threads=1):
        return RenameUnit(small_machine(), threads)

    def test_initial_mappings_are_ready(self):
        u = self._unit()
        for logical in (0, 5, FP_BASE, FP_BASE + 3):
            assert u.is_ready(u.maps[0].lookup(logical))

    def test_rename_allocates_not_ready_dest(self):
        u = self._unit()
        d, old, s1, s2 = u.rename(0, 3, 1, 2)
        assert d >= 0 and not u.is_ready(d)
        assert old >= 0  # initial mapping existed
        assert u.is_ready(s1) and u.is_ready(s2)
        assert u.maps[0].lookup(3) == d

    def test_dependence_through_renamed_register(self):
        u = self._unit()
        d1, _, _, _ = u.rename(0, 3, NO_REG, NO_REG)
        _, _, s1, _ = u.rename(0, 4, 3, NO_REG)
        assert s1 == d1
        assert not u.is_ready(s1)
        u.mark_ready(d1)
        assert u.is_ready(s1)

    def test_zero_register_sources_and_dests(self):
        u = self._unit()
        d, old, s1, s2 = u.rename(0, REG_INT_ZERO, REG_INT_ZERO, NO_REG)
        assert d == NO_PREG and old == NO_PREG
        assert s1 == NO_PREG and u.is_ready(s1)

    def test_threads_have_independent_maps(self):
        u = self._unit(threads=2)
        d0, _, _, _ = u.rename(0, 3, NO_REG, NO_REG)
        d1, _, _, _ = u.rename(1, 3, NO_REG, NO_REG)
        assert d0 != d1
        assert u.maps[0].lookup(3) == d0
        assert u.maps[1].lookup(3) == d1

    def test_fp_and_int_pools_separate(self):
        u = self._unit()
        di, _, _, _ = u.rename(0, 3, NO_REG, NO_REG)
        df, _, _, _ = u.rename(0, FP_BASE + 3, NO_REG, NO_REG)
        assert u.int_free.owns(di)
        assert u.fp_free.owns(df)

    def test_release_returns_register(self):
        u = self._unit()
        before = len(u.int_free)
        d, old, _, _ = u.rename(0, 3, NO_REG, NO_REG)
        assert len(u.int_free) == before - 1
        u.release(old)
        assert len(u.int_free) == before

    def test_can_rename_tracks_exhaustion(self):
        u = self._unit()
        while len(u.int_free):
            assert u.can_rename(0, 3)
            u.rename(0, 3, NO_REG, NO_REG)
        assert not u.can_rename(0, 3)
        assert u.can_rename(0, NO_REG)  # no dest needed
        assert u.can_rename(0, FP_BASE + 1)  # fp pool unaffected

    def test_too_many_threads_rejected(self):
        cfg = tiny_machine()  # 48 phys regs: one thread needs 31
        with pytest.raises(ValueError, match="cannot"):
            RenameUnit(cfg, 4)

    def test_reset_restores_initial_state(self):
        u = self._unit()
        u.rename(0, 3, NO_REG, NO_REG)
        free_after_rename = len(u.int_free)
        u.reset()
        assert len(u.int_free) == free_after_rename + 1
        assert u.is_ready(u.maps[0].lookup(3))

"""Issue queue tests: insert, wakeup, readiness, comparator budget."""

import pytest

from repro.core.iq import IssueQueue
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr


def instr(seq, src1=-1, src2=-1, dest=-1, tid=0):
    di = DynInstr(tid=tid, seq=seq, tseq=seq, op=int(OpClass.IALU), pc=0,
                  addr=0, taken=False, target=0, dest_l=-1, src1_l=-1,
                  src2_l=-1, fetch_cycle=0)
    di.src1_p = src1
    di.src2_p = src2
    di.dest_p = dest
    return di


@pytest.fixture
def ready_bits():
    return bytearray(16)


def make_iq(ready_bits, capacity=4, comparators=2):
    return IssueQueue(capacity, comparators, ready_bits)


class TestNonreadySources:
    def test_no_sources(self, ready_bits):
        iq = make_iq(ready_bits)
        assert iq.nonready_sources(instr(0)) == []

    def test_ready_sources_not_counted(self, ready_bits):
        ready_bits[3] = 1
        iq = make_iq(ready_bits)
        assert iq.nonready_sources(instr(0, src1=3)) == []

    def test_two_distinct_nonready(self, ready_bits):
        iq = make_iq(ready_bits)
        assert iq.nonready_sources(instr(0, src1=3, src2=4)) == [3, 4]

    def test_duplicate_tag_counts_once(self, ready_bits):
        """Two identical non-ready sources need one comparator (the
        paper's NDI definition is two *distinct* outstanding tags)."""
        iq = make_iq(ready_bits)
        assert iq.nonready_sources(instr(0, src1=3, src2=3)) == [3]


class TestInsertAndWakeup:
    def test_ready_instr_immediately_selectable(self, ready_bits):
        iq = make_iq(ready_bits)
        i = instr(0)
        iq.insert(i, cycle=5)
        assert i.in_iq and i.dispatch_cycle == 5
        assert iq.drain_ready() == [i]

    def test_waiting_instr_not_ready_until_wakeup(self, ready_bits):
        iq = make_iq(ready_bits)
        i = instr(0, src1=3)
        iq.insert(i, 0)
        assert iq.drain_ready() == []
        ready_bits[3] = 1
        iq.wakeup(3)
        assert iq.drain_ready() == [i]

    def test_two_source_wakeup_order_irrelevant(self, ready_bits):
        iq = make_iq(ready_bits)
        i = instr(0, src1=3, src2=4)
        iq.insert(i, 0)
        iq.wakeup(4)
        assert iq.drain_ready() == []
        iq.wakeup(3)
        assert iq.drain_ready() == [i]

    def test_wakeup_of_unwatched_tag_is_noop(self, ready_bits):
        iq = make_iq(ready_bits)
        iq.wakeup(9)  # no waiters registered

    def test_ready_order_is_oldest_first(self, ready_bits):
        iq = make_iq(ready_bits)
        a, b = instr(2), instr(1)
        iq.insert(a, 0)
        iq.insert(b, 0)
        assert [i.seq for i in iq.drain_ready()] == [1, 2]

    def test_shared_producer_wakes_all_waiters(self, ready_bits):
        iq = make_iq(ready_bits)
        a, b = instr(0, src1=3), instr(1, src1=3)
        iq.insert(a, 0)
        iq.insert(b, 0)
        iq.wakeup(3)
        assert set(iq.drain_ready()) == {a, b}

    def test_occupancy_and_free_slots(self, ready_bits):
        iq = make_iq(ready_bits, capacity=2)
        iq.insert(instr(0), 0)
        assert iq.occupancy == 1 and iq.free_slots == 1
        i = instr(1)
        iq.insert(i, 0)
        assert iq.free_slots == 0
        iq.remove_on_issue(i)
        assert iq.occupancy == 1 and not i.in_iq

    def test_overflow_rejected(self, ready_bits):
        iq = make_iq(ready_bits, capacity=1)
        iq.insert(instr(0), 0)
        with pytest.raises(RuntimeError, match="overflow"):
            iq.insert(instr(1), 0)


class TestComparatorBudget:
    def test_reduced_queue_rejects_two_nonready(self, ready_bits):
        iq = make_iq(ready_bits, comparators=1)
        with pytest.raises(RuntimeError, match="comparators"):
            iq.insert(instr(0, src1=3, src2=4), 0)

    def test_reduced_queue_accepts_one_nonready(self, ready_bits):
        iq = make_iq(ready_bits, comparators=1)
        iq.insert(instr(0, src1=3), 0)

    def test_reduced_queue_accepts_duplicate_tag(self, ready_bits):
        iq = make_iq(ready_bits, comparators=1)
        iq.insert(instr(0, src1=3, src2=3), 0)

    def test_full_queue_accepts_two_nonready(self, ready_bits):
        iq = make_iq(ready_bits, comparators=2)
        iq.insert(instr(0, src1=3, src2=4), 0)

    def test_invalid_comparator_count(self, ready_bits):
        with pytest.raises(ValueError):
            IssueQueue(4, 3, ready_bits)
        with pytest.raises(ValueError):
            IssueQueue(0, 2, ready_bits)


class TestStatsAndReset:
    def test_tick_accumulates_occupancy(self, ready_bits):
        iq = make_iq(ready_bits)
        iq.insert(instr(0), 0)
        iq.tick()
        iq.tick()
        assert iq.occupancy_integral == 2

    def test_reset_clears_state(self, ready_bits):
        iq = make_iq(ready_bits)
        iq.insert(instr(0, src1=3), 0)
        iq.reset()
        assert iq.occupancy == 0
        assert not iq.waiting
        assert iq.drain_ready() == []

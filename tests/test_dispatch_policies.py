"""Unit tests for the three dispatch policies (the paper's §3-§4 logic),
driven against a minimal fake core."""

import pytest

from repro.core.dispatch import InOrderDispatch
from repro.core.iq import IssueQueue
from repro.core.ooo_dispatch import OutOfOrderDispatch
from repro.core.scheduler import make_dispatch_policy
from repro.core.two_op_block import TwoOpBlockDispatch
from repro.config.presets import paper_machine
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.stats import PipelineStats


def instr(seq, src1=-1, src2=-1, dest=-1):
    di = DynInstr(tid=0, seq=seq, tseq=seq, op=int(OpClass.IALU), pc=0,
                  addr=0, taken=False, target=0, dest_l=-1, src1_l=-1,
                  src2_l=-1, fetch_cycle=0)
    di.src1_p = src1
    di.src2_p = src2
    di.dest_p = dest
    return di


class FakeThread:
    def __init__(self, buffer):
        self.dispatch_buffer = list(buffer)
        self.blocked_2op = False


class FakeCore:
    def __init__(self, capacity=8, comparators=1):
        self.ready = bytearray(32)
        self.iq = IssueQueue(capacity, comparators, self.ready)
        self.stats = PipelineStats(num_threads=1)


class TestInOrderDispatch:
    def test_dispatches_in_program_order(self):
        core = FakeCore(comparators=2)
        ts = FakeThread([instr(0), instr(1), instr(2)])
        n = InOrderDispatch().dispatch_thread(core, ts, 0, budget=2)
        assert n == 2
        assert [i.seq for i in ts.dispatch_buffer] == [2]

    def test_dispatches_ndi_without_blocking(self):
        core = FakeCore(comparators=2)
        ts = FakeThread([instr(0, src1=3, src2=4), instr(1)])
        n = InOrderDispatch().dispatch_thread(core, ts, 0, budget=8)
        assert n == 2
        assert not ts.blocked_2op

    def test_stops_on_full_iq(self):
        core = FakeCore(capacity=1, comparators=2)
        ts = FakeThread([instr(0), instr(1)])
        n = InOrderDispatch().dispatch_thread(core, ts, 0, budget=8)
        assert n == 1
        assert len(ts.dispatch_buffer) == 1

    def test_never_scan_blocked(self):
        core = FakeCore(comparators=2)
        ts = FakeThread([instr(0, src1=3, src2=4)])
        assert InOrderDispatch().scan_blocked(core, ts) is False


class TestTwoOpBlock:
    def test_blocks_on_head_ndi(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4)
        ts = FakeThread([ndi, instr(1)])
        n = TwoOpBlockDispatch().dispatch_thread(core, ts, 0, budget=8)
        assert n == 0
        assert ts.blocked_2op
        assert ndi.was_ndi_blocked
        assert len(ts.dispatch_buffer) == 2  # nothing removed

    def test_dispatches_until_ndi(self):
        core = FakeCore()
        ts = FakeThread([instr(0), instr(1, src1=3),
                         instr(2, src1=4, src2=5), instr(3)])
        n = TwoOpBlockDispatch().dispatch_thread(core, ts, 0, budget=8)
        assert n == 2
        assert [i.seq for i in ts.dispatch_buffer] == [2, 3]

    def test_unblocks_when_one_source_ready(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4)
        ts = FakeThread([ndi])
        policy = TwoOpBlockDispatch()
        assert policy.dispatch_thread(core, ts, 0, 8) == 0
        core.ready[3] = 1  # one source arrives -> dispatchable
        ts.blocked_2op = False
        assert policy.dispatch_thread(core, ts, 1, 8) == 1
        assert not ts.dispatch_buffer

    def test_duplicate_tags_are_dispatchable(self):
        core = FakeCore()
        ts = FakeThread([instr(0, src1=3, src2=3)])
        assert TwoOpBlockDispatch().dispatch_thread(core, ts, 0, 8) == 1

    def test_scan_blocked_matches_head(self):
        core = FakeCore()
        policy = TwoOpBlockDispatch()
        assert policy.scan_blocked(core, FakeThread([instr(0, src1=3, src2=4)]))
        assert not policy.scan_blocked(core, FakeThread([instr(0, src1=3)]))
        assert not policy.scan_blocked(core, FakeThread([]))


class TestOutOfOrderDispatch:
    def test_skips_ndi_dispatches_hdis(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4)
        hdi1 = instr(1, src1=5)
        hdi2 = instr(2)
        ts = FakeThread([ndi, hdi1, hdi2])
        n = OutOfOrderDispatch().dispatch_thread(core, ts, 0, budget=8)
        assert n == 2
        assert ts.dispatch_buffer == [ndi]
        assert hdi1.ooo_dispatched and hdi1.skipped_ndis == 1
        assert hdi2.ooo_dispatched
        assert not ndi.issued and not ndi.in_iq

    def test_no_flag_when_nothing_skipped(self):
        core = FakeCore()
        ts = FakeThread([instr(0), instr(1)])
        OutOfOrderDispatch().dispatch_thread(core, ts, 0, 8)
        assert not any(i.ooo_dispatched for i in (ts.dispatch_buffer or []))

    def test_ndi_dependent_statistic(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4, dest=7)
        dependent_hdi = instr(1, src1=7)  # reads the NDI's result
        independent_hdi = instr(2, src1=5)
        ts = FakeThread([ndi, dependent_hdi, independent_hdi])
        OutOfOrderDispatch().dispatch_thread(core, ts, 0, 8)
        assert dependent_hdi.ndi_dependent
        assert not independent_hdi.ndi_dependent
        assert core.stats.ooo_dispatched == 2
        assert core.stats.ooo_ndi_dependent == 1

    def test_transitive_ndi_dependence(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4, dest=7)
        mid = instr(1, src1=7, dest=8)     # depends on NDI
        leaf = instr(2, src1=8)            # depends on mid -> transitively
        ts = FakeThread([ndi, mid, leaf])
        OutOfOrderDispatch().dispatch_thread(core, ts, 0, 8)
        assert mid.ndi_dependent and leaf.ndi_dependent

    def test_blocked_only_when_whole_buffer_ndi(self):
        core = FakeCore()
        ts = FakeThread([instr(0, src1=3, src2=4), instr(1, src1=5, src2=6)])
        n = OutOfOrderDispatch().dispatch_thread(core, ts, 0, 8)
        assert n == 0
        assert ts.blocked_2op

    def test_not_blocked_when_stopped_by_iq_full(self):
        core = FakeCore(capacity=1)
        ts = FakeThread([instr(0), instr(1)])
        policy = OutOfOrderDispatch()
        n = policy.dispatch_thread(core, ts, 0, 8)
        assert n == 1
        assert not ts.blocked_2op  # resource limit, not policy block

    def test_budget_respected(self):
        core = FakeCore()
        ts = FakeThread([instr(i) for i in range(5)])
        assert OutOfOrderDispatch().dispatch_thread(core, ts, 0, 3) == 3
        assert len(ts.dispatch_buffer) == 2

    def test_multiple_ndis_skipped(self):
        core = FakeCore()
        ndis = [instr(0, src1=3, src2=4), instr(1, src1=5, src2=6)]
        hdi = instr(2)
        ts = FakeThread(ndis + [hdi])
        OutOfOrderDispatch().dispatch_thread(core, ts, 0, 8)
        assert hdi.skipped_ndis == 2
        assert ts.dispatch_buffer == ndis

    def test_scan_blocked(self):
        core = FakeCore()
        policy = OutOfOrderDispatch()
        all_ndi = FakeThread([instr(0, src1=3, src2=4),
                              instr(1, src1=5, src2=6)])
        assert policy.scan_blocked(core, all_ndi)
        with_hdi = FakeThread([instr(0, src1=3, src2=4), instr(1)])
        assert not policy.scan_blocked(core, with_hdi)


class TestFilteredVariant:
    def test_holds_ndi_dependent_hdis(self):
        core = FakeCore()
        ndi = instr(0, src1=3, src2=4, dest=7)
        dependent = instr(1, src1=7)
        independent = instr(2, src1=5)
        ts = FakeThread([ndi, dependent, independent])
        n = OutOfOrderDispatch(filtered=True).dispatch_thread(core, ts, 0, 8)
        assert n == 1
        assert dependent in ts.dispatch_buffer
        assert independent.ooo_dispatched

    def test_filtered_scan_blocked_accounts_for_taint(self):
        core = FakeCore()
        policy = OutOfOrderDispatch(filtered=True)
        ndi = instr(0, src1=3, src2=4, dest=7)
        dependent = instr(1, src1=7)
        ts = FakeThread([ndi, dependent])
        assert policy.scan_blocked(core, ts)
        ts2 = FakeThread([ndi, instr(1, src1=5)])
        assert not policy.scan_blocked(core, ts2)


class TestFactory:
    @pytest.mark.parametrize("kind,cls,filtered", [
        ("traditional", InOrderDispatch, None),
        ("2op_block", TwoOpBlockDispatch, None),
        ("2op_ooo", OutOfOrderDispatch, False),
        ("2op_ooo_filtered", OutOfOrderDispatch, True),
    ])
    def test_mapping(self, kind, cls, filtered):
        policy = make_dispatch_policy(paper_machine(scheduler=kind))
        assert isinstance(policy, cls)
        if filtered is not None:
            assert policy.filtered is filtered

    def test_reduced_iq_flags(self):
        assert not make_dispatch_policy(paper_machine()).needs_reduced_iq
        assert make_dispatch_policy(
            paper_machine(scheduler="2op_block")).needs_reduced_iq

"""End-to-end integration tests on generated workloads.

These run the real trace generator through the real pipeline at small
scale, checking the cross-cutting invariants the figure experiments rely
on.
"""

import pytest

from repro.config.presets import paper_machine
from repro.experiments.runner import simulate_mix, thread_traces
from repro.pipeline.smt_core import SMTProcessor

FAST = dict(max_insns=2000, seed=0, warmup=3000)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("sched", ["traditional", "2op_block",
                                       "2op_ooo", "2op_ooo_filtered"])
    def test_two_thread_mix_runs_clean(self, sched):
        cfg = paper_machine(scheduler=sched)
        r = simulate_mix(["equake", "gzip"], cfg, **FAST)
        assert r.throughput_ipc > 0
        assert all(c > 0 for c in r.committed)

    def test_four_thread_mix_runs_clean(self):
        cfg = paper_machine(scheduler="2op_ooo")
        r = simulate_mix(["mgrid", "equake", "art", "lucas"], cfg, **FAST)
        assert r.num_threads == 4
        assert r.throughput_ipc > 0

    def test_invariants_hold_mid_run(self):
        cfg = paper_machine(scheduler="2op_ooo", iq_size=32)
        traces = thread_traces(["parser", "vortex"], 2000, 0, 3000)
        core = SMTProcessor(cfg, traces, warmup=3000)
        for i in range(600):
            core.step()
            if i % 37 == 0:
                core.validate()

    def test_identical_streams_across_schedulers(self):
        """All schedulers must fetch the same architectural stream; the
        per-thread committed counts at a fixed budget may differ (they
        run for different cycle counts) but the committed instructions
        are a prefix of the same trace — check via total progress and
        fetch determinism."""
        counts = {}
        for sched in ("traditional", "2op_block", "2op_ooo"):
            cfg = paper_machine(scheduler=sched)
            r = simulate_mix(["equake", "gzip"], cfg, **FAST)
            counts[sched] = r
        # The budget thread always reaches the budget.
        for r in counts.values():
            assert max(r.committed) >= FAST["max_insns"]

    def test_2op_shows_expected_ordering_on_low_ilp_pair(self):
        """The paper's central 2-thread result at this repo's default
        calibration: traditional >= 2op_ooo > 2op_block (throughput) on
        a memory-bound pair with a 64-entry queue."""
        results = {}
        for sched in ("traditional", "2op_block", "2op_ooo"):
            cfg = paper_machine(iq_size=64, scheduler=sched)
            results[sched] = simulate_mix(
                ["equake", "lucas"], cfg, max_insns=4000, seed=0
            ).throughput_ipc
        assert results["2op_block"] < results["2op_ooo"]
        assert results["2op_block"] < results["traditional"]
        assert results["2op_ooo"] > 0.9 * results["traditional"]

    def test_warmup_changes_results(self):
        cfg = paper_machine()
        cold = simulate_mix(["gzip"], cfg, max_insns=2000, seed=0, warmup=1)
        warm = simulate_mix(["gzip"], cfg, max_insns=2000, seed=0,
                            warmup=20_000)
        assert warm.throughput_ipc > cold.throughput_ipc

    def test_wedge_detection_is_quiet_on_healthy_runs(self):
        cfg = paper_machine(scheduler="2op_ooo")
        simulate_mix(["mcf"], cfg, max_insns=1500, seed=0, warmup=3000)


class TestStatsConsistency:
    def test_extras_match_recomputation(self):
        cfg = paper_machine(scheduler="2op_block", iq_size=32)
        traces = thread_traces(["equake", "lucas"], 2000, 0, 3000)
        core = SMTProcessor(cfg, traces, warmup=3000)
        stats = core.run(2000)
        assert stats.all_blocked_2op_cycles <= stats.no_dispatch_cycles
        assert stats.issued >= stats.committed_total
        assert stats.renamed >= stats.dispatched
        assert stats.iq_residency_count <= stats.issued

    def test_dab_only_for_ooo_buffer_mode(self):
        for sched, has_dab in (("traditional", False), ("2op_block", False),
                               ("2op_ooo", True)):
            cfg = paper_machine(scheduler=sched)
            traces = thread_traces(["gzip"], 500, 0, 600)
            core = SMTProcessor(cfg, traces, warmup=600)
            assert (core.dab is not None) == has_dab

    def test_watchdog_only_in_watchdog_mode(self):
        cfg = paper_machine(scheduler="2op_ooo", deadlock_mode="watchdog")
        traces = thread_traces(["gzip"], 500, 0, 600)
        core = SMTProcessor(cfg, traces, warmup=600)
        assert core.watchdog is not None
        assert core.dab is None

"""Sweep and figure-driver tests (scaled-down grids)."""

import pytest

from repro.config.presets import small_machine
from repro.experiments.figures import figure1, figure3, figure7
from repro.experiments.sweep import SweepResult, run_sweep
from repro.workloads.mixes import TWO_THREAD_MIXES

CFG = small_machine()
GRID = dict(iq_sizes=(8, 16), max_insns=1200, seed=0)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        TWO_THREAD_MIXES[:2], CFG,
        schedulers=("traditional", "2op_block"), **GRID
    )


class TestRunSweep:
    def test_grid_complete(self, sweep):
        assert len(sweep.results) == 2 * 2 * 2
        for sched in ("traditional", "2op_block"):
            for iq in (8, 16):
                for mix in TWO_THREAD_MIXES[:2]:
                    r = sweep.get(sched, iq, mix.name)
                    assert r.scheduler == sched
                    assert r.iq_size == iq

    def test_hmean_ipc(self, sweep):
        h = sweep.hmean_ipc("traditional", 16)
        ipcs = [
            sweep.get("traditional", 16, m.name).throughput_ipc
            for m in TWO_THREAD_MIXES[:2]
        ]
        assert min(ipcs) <= h <= max(ipcs)

    def test_mean_extra(self, sweep):
        v = sweep.mean_extra("2op_block", 16, "all_blocked_2op_fraction")
        assert 0.0 <= v <= 1.0
        with pytest.raises(KeyError):
            sweep.mean_extra("2op_block", 999, "all_blocked_2op_fraction")

    def test_mix_names(self, sweep):
        assert sweep.mix_names() == sorted(
            m.name for m in TWO_THREAD_MIXES[:2]
        )

    def test_progress_callback(self):
        lines = []
        run_sweep(
            TWO_THREAD_MIXES[:1], CFG, schedulers=("traditional",),
            iq_sizes=(8,), max_insns=600, progress=lines.append,
        )
        assert len(lines) == 1
        assert "traditional" in lines[0]

    def test_fairness_sweep(self):
        s = run_sweep(
            TWO_THREAD_MIXES[:1], CFG, schedulers=("traditional",),
            iq_sizes=(8,), max_insns=800, with_fairness=True,
        )
        assert s.hmean_fairness("traditional", 8) > 0


class TestFigureDrivers:
    def test_figure1_structure(self):
        result = figure1(
            max_insns=800, iq_sizes=(8, 16), thread_counts=(2,),
            max_mixes=1, base_config=CFG,
        )
        assert result.iq_sizes == (8, 16)
        assert list(result.series) == ["2 threads"]
        assert len(result.series["2 threads"]) == 2
        assert all(v > 0 for v in result.series["2 threads"])

    def test_figure3_structure_and_normalisation(self):
        result = figure3(
            max_insns=800, iq_sizes=(8, 16), max_mixes=1, base_config=CFG,
        )
        assert set(result.series) == {"traditional", "2op_block", "2op_ooo"}
        # Normalised to traditional at the smallest size.
        assert result.series["traditional"][0] == pytest.approx(1.0)

    def test_figure_rows_and_speedup(self):
        result = figure3(
            max_insns=800, iq_sizes=(8,), max_mixes=1, base_config=CFG,
        )
        rows = result.rows()
        assert rows[0][0] == 8
        ratios = result.speedup_over("2op_ooo", "2op_block")
        assert len(ratios) == 1 and ratios[0] > 0

    def test_figure7_uses_four_thread_mixes(self):
        # small_machine's register file cannot back 4 threads; widen it.
        cfg = CFG.replace(int_phys_regs=192, fp_phys_regs=192)
        result = figure7(
            max_insns=800, iq_sizes=(8,), max_mixes=1, base_config=cfg,
        )
        r = result.sweep.get("traditional", 8, "4t-mix1")
        assert r.num_threads == 4

"""Tests for the distributed sweep service (``repro.serve``).

The headline invariant, enforced here end to end: a sweep executed by
the service — across real worker processes, under injected worker kills
and dropped/duplicated/delayed frames — completes with results
byte-identical to a fault-free single-host ``execute_jobs`` run, and a
repeat submission simulates nothing. Around it: the consistent-hash
ring's stability property (hypothesis), per-policy result identity,
protocol framing and checksum handling, network-chaos determinism,
cross-submission dedup, journal-backed server restart/resume, and the
``ExecutorConfig(server=...)`` routing of existing sweeps.

The overload surface gets the same treatment: fair-share DRR ordering
(weights, starvation-freedom, deficit banking), admission control
(budget, bounded queue, 429/Retry-After, 503 while drained), client
backoff + circuit breaker semantics against a scripted fake server,
resilient event-stream reconnection, SIGTERM == drain for the real
CLI process, submission before the server is even listening, breaker
-triggered local fallback, and an acceptance run that drains an
overloaded 3-submitter chaos cluster mid-sweep, restarts it, and
proves byte-identity plus zero re-simulation plus no starvation.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import small_machine
from repro.exec import (
    ChaosConfig,
    ExecutorConfig,
    SimJob,
    execute_jobs,
    jobs_for_grid,
)
from repro.exec.cache import encode_job_result
from repro.exec.jobs import JobResult
from repro.serve import (
    POLICIES,
    CircuitBreaker,
    CircuitOpenError,
    FairSharePolicy,
    HashRingPolicy,
    LeastLoadedPolicy,
    LJFPolicy,
    LocalCluster,
    QueueEntry,
    RetryPolicy,
    ServerError,
    SweepClient,
    SweepInterrupted,
    SweepServer,
    WorkerView,
    make_policy,
    ring_assign,
)
from repro.serve.client import (
    cache_stats,
    execute_remote,
    fetch_results,
    stream_events,
    submit,
)
from repro.serve.protocol import (
    FrameError,
    decode_result_frame,
    encode_result_frame,
    frame_bytes,
    job_from_fingerprint,
    read_frame,
)
from repro.serve.worker import parse_server_url
from repro.workloads.mixes import TWO_THREAD_MIXES

CFG = small_machine()
INSNS = 300


def grid_jobs() -> list[SimJob]:
    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:2], CFG, ("traditional", "2op_ooo"), (8,),
        INSNS, 0,
    )
    return [job for _, job in keyed]


def canon(results) -> list[str]:
    """Byte-level canonical form of a result list, for the invariant."""
    return [json.dumps(encode_job_result(p), sort_keys=True)
            for p in results]


@pytest.fixture(scope="module")
def golden():
    """Fault-free single-host results for the module's 4-point grid."""
    jobs = grid_jobs()
    results, report = execute_jobs(jobs, ExecutorConfig(jobs=1))
    assert report.simulated == len(jobs)
    return canon(results)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """One fault-free loopback cluster shared by the happy-path tests."""
    root = tmp_path_factory.mktemp("serve")
    with LocalCluster(
        workers=2, cache_dir=root / "cache", journal_dir=root / "journal",
        retries=2, timeout=60.0,
    ) as c:
        yield c


# ----------------------------------------------------------------------
# consistent hashing: the stability property
# ----------------------------------------------------------------------
job_hashes = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
    min_size=1, max_size=40, unique=True,
)
worker_sets = st.lists(
    st.text(alphabet="wxyz", min_size=1, max_size=4),
    min_size=1, max_size=6, unique=True,
)


class TestRingAssign:
    @given(job_hashes, worker_sets)
    @settings(max_examples=60)
    def test_join_moves_keys_only_to_new_worker(self, keys, workers):
        joined = workers + ["newcomer"]
        for key in keys:
            before = ring_assign(key, workers)
            after = ring_assign(key, joined)
            assert after in (before, "newcomer")

    @given(job_hashes, worker_sets)
    @settings(max_examples=60)
    def test_leave_moves_only_departed_workers_keys(self, keys, workers):
        if len(workers) < 2:
            return
        departed = workers[0]
        rest = workers[1:]
        for key in keys:
            before = ring_assign(key, workers)
            after = ring_assign(key, rest)
            if before != departed:
                assert after == before

    @given(job_hashes, worker_sets)
    @settings(max_examples=30)
    def test_assignment_is_deterministic_and_order_free(self, keys,
                                                        workers):
        for key in keys:
            assert ring_assign(key, workers) == \
                   ring_assign(key, list(reversed(workers)))

    def test_churn_is_about_one_over_n(self):
        # With 5 workers, adding a 6th should move ~1/6 of keys; virtual
        # nodes keep the realised fraction in the right ballpark.
        keys = [f"{i:04x}" for i in range(600)]
        workers = [f"w{i}" for i in range(5)]
        before = {k: ring_assign(k, workers) for k in keys}
        after = {k: ring_assign(k, workers + ["w5"]) for k in keys}
        moved = sum(before[k] != after[k] for k in keys)
        assert 0.05 < moved / len(keys) < 0.35

    def test_empty_worker_set_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ring_assign("abcd", [])


# ----------------------------------------------------------------------
# allocation policies (pure, no server)
# ----------------------------------------------------------------------
class TestPolicies:
    def test_registry_and_factory(self):
        assert set(POLICIES) == {"hash-ring", "least-loaded", "ljf",
                                 "fair-share"}
        assert isinstance(make_policy("hash-ring"), HashRingPolicy)
        with pytest.raises(ValueError, match="unknown allocation policy"):
            make_policy("round-robin")

    def test_hash_ring_honours_owner_even_when_busy(self):
        policy = HashRingPolicy()
        workers = [WorkerView("a", slots=1, in_flight=0),
                   WorkerView("b", slots=1, in_flight=0)]
        owner = policy.pick_worker("feed", 1.0, workers)
        assert owner == ring_assign("feed", ["a", "b"])
        # Fill the owner: the job must stay queued, not migrate.
        for w in workers:
            if w.name == owner:
                w.in_flight = 1
        assert policy.pick_worker("feed", 1.0, workers) is None

    def test_least_loaded_picks_most_free_name_tiebreak(self):
        policy = LeastLoadedPolicy()
        workers = [WorkerView("b", slots=4, in_flight=1),
                   WorkerView("a", slots=4, in_flight=1),
                   WorkerView("c", slots=4, in_flight=3)]
        assert policy.pick_worker("h", 1.0, workers) == "a"
        assert policy.pick_worker(
            "h", 1.0, [WorkerView("a", 1, 1), WorkerView("b", 1, 1)]
        ) is None

    def test_queue_orders(self):
        pending = [QueueEntry("aa", 1.0, seq=1),
                   QueueEntry("bb", 3.0, seq=2),
                   QueueEntry("cc", 2.0, seq=3)]
        assert LeastLoadedPolicy().queue_order(pending) == \
               ["aa", "bb", "cc"]
        assert LJFPolicy().queue_order(pending) == ["bb", "cc", "aa"]


class TestFairShare:
    @staticmethod
    def _entries(spec):
        """[(submitter, n, weight)] -> interleaved-by-arrival entries
        where each submitter's jobs arrive as one burst."""
        entries, seq = [], 0
        for submitter, n, weight in spec:
            for i in range(n):
                seq += 1
                entries.append(QueueEntry(
                    f"{submitter}{i}", 1.0, submitter=submitter,
                    weight=weight, seq=seq,
                ))
        return entries

    def test_round_robin_interleaves_equal_weights(self):
        # "big" burst-submits 4 jobs before "small" submits 2; FIFO
        # would starve small behind the burst, DRR alternates.
        pending = self._entries([("big", 4, 1.0), ("small", 2, 1.0)])
        order = FairSharePolicy().queue_order(pending)
        assert order == ["big0", "small0", "big1", "small1",
                         "big2", "big3"]

    def test_weights_set_the_share_ratio(self):
        pending = self._entries([("big", 6, 2.0), ("small", 3, 1.0)])
        order = FairSharePolicy().queue_order(pending)
        # weight 2 earns two unit jobs per round vs one.
        assert order == ["big0", "big1", "small0", "big2", "big3",
                         "small1", "big4", "big5", "small2"]

    def test_zero_weight_deprioritised_but_not_starved(self):
        pending = self._entries([("free", 2, 0.0), ("paid", 2, 1.0)])
        order = FairSharePolicy().queue_order(pending)
        assert sorted(order) == sorted(e.hash for e in pending)
        assert order.index("free0") < len(order)  # emitted at all
        assert order.index("paid0") < order.index("free0")

    def test_is_a_permutation_with_heterogeneous_costs(self):
        entries, seq = [], 0
        for submitter, costs in (("a", [5.0, 1.0, 3.0]),
                                 ("b", [2.0, 2.0]),
                                 ("c", [9.0])):
            for i, cost in enumerate(costs):
                seq += 1
                entries.append(QueueEntry(
                    f"{submitter}{i}", cost, submitter=submitter,
                    weight=1.0, seq=seq,
                ))
        order = FairSharePolicy().queue_order(entries)
        assert sorted(order) == sorted(e.hash for e in entries)

    def test_deficit_resets_when_submitter_goes_idle(self):
        policy = FairSharePolicy()
        policy.queue_order(self._entries([("a", 3, 1.0),
                                          ("b", 1, 1.0)]))
        # Fully drained queues forfeit any banked credit...
        assert all(d == 0.0 for d in policy._deficit.values())
        # ...and a fresh call with only "b" pending prunes "a".
        order = policy.queue_order(self._entries([("b", 2, 1.0)]))
        assert order == ["b0", "b1"]
        assert "a" not in policy._deficit

    def test_placement_is_inherited_least_loaded(self):
        policy = FairSharePolicy()
        workers = [WorkerView("b", slots=4, in_flight=1),
                   WorkerView("a", slots=4, in_flight=0)]
        assert policy.pick_worker("h", 1.0, workers) == "a"


# ----------------------------------------------------------------------
# wire protocol: framing, checksums, network chaos
# ----------------------------------------------------------------------
class TestProtocol:
    def _payload(self) -> JobResult:
        return grid_jobs()[0].run()

    def test_result_frame_roundtrip_is_byte_stable(self):
        payload = self._payload()
        frame = encode_result_frame("abcd", 0, payload)
        decoded = decode_result_frame(frame)
        assert canon([decoded]) == canon([payload])

    def test_checksum_mismatch_treated_as_lost(self):
        frame = encode_result_frame("abcd", 0, self._payload())
        frame["body"]["result"]["cycles"] += 1
        assert decode_result_frame(frame) is None

    def test_raw_body_kind_roundtrip(self):
        frame = encode_result_frame("abcd", 1, {"answer": 42})
        assert frame["body_kind"] == "raw"
        assert decode_result_frame(frame) == {"answer": 42}

    def test_job_from_fingerprint_preserves_hash(self):
        job = grid_jobs()[0]
        rebuilt = job_from_fingerprint(job.fingerprint_payload())
        assert rebuilt.content_hash() == job.content_hash()

    def test_read_frame_roundtrip_and_eof(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame_bytes({"type": "heartbeat"}))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = asyncio.run(go())
        assert first == {"type": "heartbeat"}
        assert second is None

    def test_read_frame_rejects_torn_and_typeless(self):
        async def torn():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"type": "hea')  # no newline, then EOF
            reader.feed_eof()
            return await read_frame(reader)

        async def typeless():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"hello": 1}\n')
            return await read_frame(reader)

        with pytest.raises(FrameError, match="mid-frame"):
            asyncio.run(torn())
        with pytest.raises(FrameError, match="without a type"):
            asyncio.run(typeless())

    def test_oversized_frame_spans_stream_limit(self):
        # Larger than the default StreamReader buffer (64 KiB) but under
        # MAX_FRAME_BYTES: the chunked fallback must reassemble it.
        big = {"type": "result", "blob": "x" * 200_000}

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame_bytes(big))
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(go()) == big

    def test_net_chaos_deterministic_and_keyed_by_attempt(self):
        c1 = ChaosConfig(seed=11, net_drop_p=0.4, net_dup_p=0.3,
                         net_delay_p=0.5, net_delay_max=0.02)
        c2 = ChaosConfig(seed=11, net_drop_p=0.4, net_dup_p=0.3,
                         net_delay_p=0.5, net_delay_max=0.02)
        keys = [f"{i:03x}" for i in range(40)]
        faults1 = [c1.net_fault("serve-dispatch", k, 0) for k in keys]
        assert faults1 == [c2.net_fault("serve-dispatch", k, 0)
                           for k in keys]
        assert "drop" in faults1 and "dup" in faults1
        # Retries must be able to converge: the same key draws fresh
        # fault decisions at the next attempt.
        assert faults1 != [c1.net_fault("serve-dispatch", k, 1)
                           for k in keys]
        # Sites are independent fault populations.
        assert faults1 != [c1.net_fault("serve-result", k, 0)
                           for k in keys]
        delays = [c1.net_delay("serve-dispatch", k, 0) for k in keys]
        assert all(0.0 <= d <= 0.02 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_net_knobs_parse_and_gate(self):
        c = ChaosConfig.parse(
            "net_drop=0.2,net_dup=0.1,net_delay=0.3,net_delay_max=0.01"
        )
        assert (c.net_drop_p, c.net_dup_p, c.net_delay_p) == \
               (0.2, 0.1, 0.3)
        assert c.net_delay_max == 0.01
        assert c.net_enabled and c.enabled
        assert not ChaosConfig(seed=5).net_enabled
        # Kill-only chaos is enabled but has no network component.
        assert not ChaosConfig(kill_p=0.5).net_enabled


class TestWorkerUrl:
    def test_parse(self):
        assert parse_server_url("http://127.0.0.1:8742") == \
               ("127.0.0.1", 8742)

    def test_rejects_bad_urls(self):
        with pytest.raises(ValueError, match="unsupported scheme"):
            parse_server_url("ftp://host:1")
        with pytest.raises(ValueError, match="host:port"):
            parse_server_url("http://hostonly")


# ----------------------------------------------------------------------
# server-side dedup across submissions (in-process, no workers)
# ----------------------------------------------------------------------
class TestSubmissionDedup:
    def test_identical_submissions_attach_to_one_sweep(self):
        async def go():
            server = SweepServer()
            await server.start()
            try:
                jobs = grid_jobs()
                first = server.submit(list(jobs))
                second = server.submit(list(jobs))
                # Content-derived sweep id: the second submission joins
                # the in-flight sweep instead of re-queueing the grid.
                assert second is first
                assert len(server.jobs) == len(jobs)
            finally:
                await server.stop()

        asyncio.run(go())

    def test_overlapping_grids_share_job_states(self):
        async def go():
            server = SweepServer()
            await server.start()
            try:
                jobs = grid_jobs()
                server.submit(jobs[:3])
                server.submit(jobs[1:])
                overlap = jobs[1].content_hash()
                st = server.jobs[overlap]
                # One _JobState, two ledgers waiting on it.
                assert len(st.waiters) == 2
                assert len(server.jobs) == len(jobs)
            finally:
                await server.stop()

        asyncio.run(go())


# ----------------------------------------------------------------------
# end to end: loopback cluster vs the single-host golden run
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_cold_then_warm_matches_golden(self, cluster, golden):
        jobs = grid_jobs()
        cold, cold_report = execute_remote(jobs, cluster.url)
        assert canon(cold) == golden
        assert cold_report.simulated == len(jobs)
        warm, warm_report = execute_remote(jobs, cluster.url)
        assert canon(warm) == golden
        assert warm_report.simulated == 0
        # The journal (replication log) replays ahead of the cache
        # pass, so a warm re-submission resolves as resumed + cached.
        assert warm_report.resumed + warm_report.cached == len(jobs)

    def test_executor_config_server_routes_execute_jobs(self, cluster,
                                                        golden):
        results, report = execute_jobs(
            grid_jobs(), ExecutorConfig(server=cluster.url)
        )
        assert canon(results) == golden
        assert report.failed == 0

    def test_progress_stream_counts(self, cluster):
        jobs = grid_jobs()
        seen: list[str] = []
        _, report = execute_remote(
            jobs, cluster.url, progress=lambda p: seen.append(p.outcome)
        )
        assert len(seen) == len(jobs)
        assert report.completed == len(jobs)

    def test_event_stream_replays_history(self, cluster):
        jobs = grid_jobs()
        reply = submit(cluster.url,
                       {"jobs": [j.fingerprint_payload() for j in jobs]})
        events = list(stream_events(cluster.url, reply["sweep"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep-start"
        assert kinds[-1] == "sweep-end"
        assert len([k for k in kinds
                    if k in ("cached", "resumed", "simulated")]) == \
               len(jobs)

    def test_grid_submission_vocabulary(self, cluster, golden):
        names = [m.name for m in TWO_THREAD_MIXES[:2]]
        reply = submit(cluster.url, {"grid": {
            "profile": "small", "threads": 2, "mixes": names,
            "schedulers": ["traditional", "2op_ooo"], "iq_sizes": [8],
            "max_insns": INSNS, "seed": 0,
        }})
        assert reply["total"] == len(golden)
        results, report = fetch_results(cluster.url, reply["sweep"])
        # A grid expanded server-side hashes identically to the same
        # grid submitted as explicit fingerprints.
        assert canon(results) == golden
        assert report.failed == 0

    def test_bad_submissions_rejected(self, cluster):
        with pytest.raises(ServerError, match="bad submission"):
            submit(cluster.url, {"grid": {"profile": "huge"}})
        with pytest.raises(ServerError, match='"jobs", "grid" or'):
            submit(cluster.url, {})

    def test_unknown_sweep_is_404(self, cluster):
        with pytest.raises(ServerError, match="404"):
            fetch_results(cluster.url, "no-such-sweep")

    def test_cache_endpoint_matches_cli_struct(self, cluster):
        stats = cache_stats(cluster.url)
        assert stats["entries"] == len(grid_jobs())
        assert {"kind": "sim", "entries": stats["entries"],
                "bytes": stats["total_bytes"]} in stats["by_kind"]
        # Per-run hit/miss counters persisted by the server's ledger
        # (same files `python -m repro.exec cache stats` aggregates).
        assert stats["runs"] >= 1
        assert stats["hits"] >= 0 and stats["misses"] >= 0


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_is_placement_only(tmp_path, golden, policy):
    """Acceptance: placement strategy can never change the bytes."""
    jobs = grid_jobs()
    with LocalCluster(
        workers=2, cache_dir=tmp_path / "cache", policy=policy,
        retries=2, timeout=60.0,
    ) as cluster:
        results, report = execute_remote(jobs, cluster.url)
    assert canon(results) == golden
    assert report.failed == 0


# ----------------------------------------------------------------------
# the acceptance invariant: chaos cluster == fault-free single host
# ----------------------------------------------------------------------
def chaos_for(hashes) -> ChaosConfig:
    """Deterministically pick a seed whose attempt-0 draws inject at
    least one worker kill and one dropped frame, so the test provably
    exercises the recovery paths — never flaky, never vacuous."""
    for seed in range(300):
        c = ChaosConfig(
            seed=seed, kill_p=0.3, net_drop_p=0.2, net_dup_p=0.2,
            net_delay_p=0.3, net_delay_max=0.02,
        )
        kills = sum(c.should_kill(h, 0) for h in hashes)
        drops = sum(
            c.net_fault(site, h, 0) == "drop"
            for h in hashes for site in ("serve-dispatch", "serve-result")
        )
        dups = sum(
            c.net_fault(site, h, a) == "dup"
            for h in hashes for site in ("serve-dispatch", "serve-result")
            for a in (0, 1)
        )
        if kills >= 1 and drops >= 1 and dups >= 1:
            return c
    raise AssertionError("no seed injects enough faults; widen the search")


def test_chaotic_cluster_matches_golden(tmp_path, golden):
    """Acceptance: >= 2 workers under worker kills + dropped/duplicated/
    delayed frames — byte-identical results, then a zero-simulation
    repeat submission."""
    jobs = grid_jobs()
    chaos = chaos_for([j.content_hash() for j in jobs])
    with LocalCluster(
        workers=2, cache_dir=tmp_path / "cache",
        journal_dir=tmp_path / "journal", chaos=chaos, respawn=True,
        retries=8, timeout=5.0, heartbeat_grace=2.0,
    ) as cluster:
        cold, cold_report = execute_remote(jobs, cluster.url)
        warm, warm_report = execute_remote(jobs, cluster.url)
    assert canon(cold) == golden
    assert cold_report.failed == 0
    # At least one attempt died with its worker and was re-dispatched.
    assert cold_report.retried >= 1
    assert canon(warm) == golden
    assert warm_report.simulated == 0


# ----------------------------------------------------------------------
# the journal as replication log: server restart, zero re-simulation
# ----------------------------------------------------------------------
def test_server_restart_resumes_from_journal(tmp_path, golden):
    jobs = grid_jobs()
    journal_dir = tmp_path / "journal"  # no cache: the journal alone
    with LocalCluster(workers=2, journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        first, first_report = execute_remote(jobs, cluster.url)
    assert canon(first) == golden
    assert first_report.simulated == len(jobs)

    # "Restart": a brand-new server process over the same journal root.
    with LocalCluster(workers=2, journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        again, report = execute_remote(jobs, cluster.url)
    assert canon(again) == golden
    assert report.simulated == 0
    assert report.resumed == len(jobs)


# ----------------------------------------------------------------------
# overload machinery: backoff, circuit breaker, client retry semantics
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        rp = RetryPolicy(seed=7)
        delays = [rp.delay("http://h:1", a) for a in range(6)]
        assert delays == [rp.delay("http://h:1", a) for a in range(6)]
        for a, d in enumerate(delays):
            raw = min(rp.cap, rp.base * 2 ** a)
            assert raw * (1 - rp.jitter) <= d <= raw

    def test_different_seeds_desynchronise(self):
        a = [RetryPolicy(seed=1).delay("s", n) for n in range(4)]
        b = [RetryPolicy(seed=2).delay("s", n) for n in range(4)]
        assert a != b


class TestCircuitBreaker:
    def test_state_machine(self):
        t = [0.0]
        cb = CircuitBreaker(threshold=2, cooldown=5.0,
                            clock=lambda: t[0])
        assert cb.state == "closed" and cb.allow()
        cb.record_failure()
        assert cb.state == "closed"
        cb.record_failure()
        assert cb.state == "open" and not cb.allow()
        t[0] = 5.0
        assert cb.state == "half-open"
        assert cb.allow()       # the single probe
        assert not cb.allow()   # no second concurrent probe
        cb.record_failure()     # failed probe: fresh cooldown
        assert cb.state == "open" and not cb.allow()
        t[0] = 10.0
        assert cb.allow()
        cb.record_success()     # probe succeeded: closed, counters reset
        assert cb.state == "closed" and cb.allow()

    def test_force_open(self):
        cb = CircuitBreaker(cooldown=1000.0)
        cb.force_open()
        assert cb.state == "open" and not cb.allow()


class TestSweepClientRequests:
    """SweepClient._call semantics against a scripted fake server."""

    @staticmethod
    def _client(monkeypatch, script, **kw):
        import repro.serve.client as client_mod

        calls = []

        def fake_request(server, method, path, payload=None,
                         timeout=None):
            action = script[min(len(calls), len(script) - 1)]
            calls.append((method, path, payload))
            if isinstance(action, Exception):
                raise action
            return action

        monkeypatch.setattr(client_mod, "_request", fake_request)
        sleeps = []
        client = SweepClient("http://127.0.0.1:1", sleep=sleeps.append,
                             **kw)
        return client, calls, sleeps

    def test_retries_connect_failures_then_succeeds(self, monkeypatch):
        script = [ServerError("refused"), ServerError("refused"),
                  {"ok": True}]
        client, calls, sleeps = self._client(monkeypatch, script)
        assert client.health() == {"ok": True}
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert client.breaker.state == "closed"  # success resets

    def test_retry_after_floor_respected(self, monkeypatch):
        script = [ServerError("busy", status=429, retry_after=3.0),
                  {"ok": True}]
        client, _, sleeps = self._client(monkeypatch, script)
        client.health()
        assert sleeps[0] >= 3.0

    def test_semantic_errors_never_retried(self, monkeypatch):
        script = [ServerError("no such sweep", status=404)]
        client, calls, _ = self._client(monkeypatch, script)
        with pytest.raises(ServerError, match="no such sweep"):
            client.health()
        assert len(calls) == 1

    def test_breaker_opens_then_fails_fast(self, monkeypatch):
        script = [ServerError("refused")]
        client, calls, _ = self._client(
            monkeypatch, script,
            breaker=CircuitBreaker(threshold=3, cooldown=60.0))
        with pytest.raises(CircuitOpenError):
            client.health()
        assert len(calls) == 3  # stopped at the threshold
        with pytest.raises(CircuitOpenError):
            client.health()
        assert len(calls) == 3  # open circuit: no network traffic

    def test_submissions_carry_submitter_identity(self, monkeypatch):
        script = [{"sweep": "x"}]
        client, calls, _ = self._client(monkeypatch, script,
                                        submitter="alice", weight=2.5)
        client.submit({"jobs": []})
        payload = calls[0][2]
        assert payload["submitter"] == "alice"
        assert payload["weight"] == 2.5

    def test_chaos_refusal_applies_before_the_wire(self, monkeypatch):
        chaos = ChaosConfig(seed=3, net_refuse_p=1.0)
        client, calls, _ = self._client(
            monkeypatch, [{"ok": True}], chaos=chaos,
            breaker=CircuitBreaker(threshold=1000))
        with pytest.raises(ServerError, match="chaos"):
            client.health()
        assert calls == []  # every attempt refused client-side


class TestStreamRecovery:
    def test_mid_stream_drop_resumes_exactly_once(self, monkeypatch):
        import repro.serve.client as client_mod

        history = [{"event": "sweep-start", "n": 0},
                   {"event": "simulated", "n": 1},
                   {"event": "simulated", "n": 2},
                   {"event": "sweep-end", "n": 3}]
        connects = []

        def fake_stream(server, sweep_id, timeout=None):
            connects.append(1)
            if len(connects) == 1:
                yield history[0]
                yield history[1]
                raise ServerError("connection dropped mid-stream")
            # Reconnect: the server replays the full history.
            yield from history

        monkeypatch.setattr(client_mod, "stream_events", fake_stream)
        client = SweepClient("http://127.0.0.1:1",
                             sleep=lambda s: None)
        assert list(client.stream_events("abc")) == history
        assert len(connects) == 2


# ----------------------------------------------------------------------
# admission control: budget, bounded queue, 429, health
# ----------------------------------------------------------------------
class TestAdmission:
    def test_within_budget_is_admitted(self, tmp_path):
        with LocalCluster(workers=0, journal_dir=tmp_path / "journal",
                          max_in_flight=8, max_queue=4) as cluster:
            reply = submit(cluster.url, {"jobs": [
                j.fingerprint_payload() for j in grid_jobs()]})
            assert reply["admission"] == "admitted"
            assert reply["retry_after"] == 0

    def test_over_budget_queued_then_429(self, tmp_path):
        jobs_a = grid_jobs()
        with LocalCluster(workers=0, journal_dir=tmp_path / "journal",
                          max_in_flight=2, max_queue=4) as cluster:
            reply = submit(cluster.url, {"jobs": [
                j.fingerprint_payload() for j in jobs_a]})
            # 4 jobs against a budget of 2: accepted but queued.
            assert reply["admission"] == "queued"
            assert reply["retry_after"] >= 1

            # 4 more new jobs: excess 6 > max_queue 4 -> 429.
            keyed = jobs_for_grid(
                TWO_THREAD_MIXES[:2], CFG, ("traditional", "2op_ooo"),
                (8,), INSNS, 1,
            )
            with pytest.raises(ServerError) as excinfo:
                submit(cluster.url, {"jobs": [
                    j.fingerprint_payload() for _, j in keyed]})
            err = excinfo.value
            assert err.status == 429
            assert err.retry_after is not None and err.retry_after >= 1
            assert "429" in str(err)

            # Resubmitting the SAME grid adds no new jobs: it attaches
            # to the in-flight sweep instead of tripping the limiter.
            again = submit(cluster.url, {"jobs": [
                j.fingerprint_payload() for j in jobs_a]})
            assert again["attached"] is True
            assert again["admission"] == "queued"

    def test_health_reports_queue_and_shares(self, tmp_path):
        with LocalCluster(workers=0, journal_dir=tmp_path / "journal",
                          max_in_flight=2, max_queue=10) as cluster:
            client = SweepClient(cluster.url, submitter="alice",
                                 weight=2.0)
            client.submit({"jobs": [
                j.fingerprint_payload() for j in grid_jobs()]})
            h = client.health()
            assert h["state"] == "serving"
            assert h["queue"]["queued"] == len(grid_jobs())
            assert h["queue"]["unresolved"] == len(grid_jobs())
            assert h["queue"]["budget"] == 2
            assert h["queue"]["queue_bound"] == 10
            alice = h["submitters"]["alice"]
            assert alice["weight"] == 2.0
            assert alice["submitted"] == len(grid_jobs())
            assert alice["queued"] == len(grid_jobs())
            assert h["workers"] == []
            assert h["sweeps"]["running"] == 1

    def test_drained_server_rejects_with_503(self, tmp_path, golden):
        jobs = grid_jobs()
        journal_dir = tmp_path / "journal"
        with LocalCluster(workers=0,
                          journal_dir=journal_dir) as cluster:
            client = SweepClient(cluster.url)
            client.submit({"jobs": [
                j.fingerprint_payload() for j in jobs]})
            summary = client.drain(0.2)  # POST /v1/admin/drain
            assert summary["state"] == "drained"
            assert summary["interrupted"] == len(jobs)
            assert client.health()["state"] == "drained"
            with pytest.raises(ServerError) as excinfo:
                submit(cluster.url, {"jobs": [
                    jobs[0].fingerprint_payload()]})
            assert excinfo.value.status == 503

        # The journalled remainder resumes on a replacement server.
        with LocalCluster(workers=2, journal_dir=journal_dir,
                          retries=2, timeout=60.0) as cluster:
            results, report = execute_remote(jobs, cluster.url)
        assert canon(results) == golden
        assert report.simulated == len(jobs)  # nothing ran pre-drain


# ----------------------------------------------------------------------
# graceful drain: in-flight work finishes, the rest journals, restart
# resumes with zero re-simulation
# ----------------------------------------------------------------------
def test_drain_midsweep_then_restart_zero_resimulation(tmp_path):
    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:2], CFG, ("traditional", "2op_ooo"), (8, 16),
        3000, 0,
    )
    jobs = [j for _, j in keyed]
    golden_results, _ = execute_jobs(jobs, ExecutorConfig(jobs=1))
    cache_dir, journal_dir = tmp_path / "cache", tmp_path / "journal"

    with LocalCluster(workers=1, cache_dir=cache_dir,
                      journal_dir=journal_dir,
                      drain_grace=0.5) as cluster:
        client = SweepClient(cluster.url, submitter="alice")
        reply = client.submit({"jobs": [
            j.fingerprint_payload() for j in jobs]})
        total = reply["total"]

        # A second client blocked on the sweep must surface the drain
        # as SweepInterrupted rather than hanging on a dead stream.
        watcher_saw: list[type] = []

        def watch() -> None:
            try:
                SweepClient(cluster.url, submitter="alice").execute(jobs)
            except SweepInterrupted:
                watcher_saw.append(SweepInterrupted)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()

        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            share = client.health()["submitters"].get("alice", {})
            if share.get("completed", 0) >= 1:
                break
            time.sleep(0.05)
        summary = cluster.drain()
        completed_a = summary["finished"]
        assert summary["state"] == "drained"
        assert completed_a >= 1
        watcher.join(timeout=30.0)
        assert watcher_saw == [SweepInterrupted]

    with LocalCluster(workers=2, cache_dir=cache_dir,
                      journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        results, report = SweepClient(cluster.url,
                                      submitter="alice").execute(jobs)
    assert canon(results) == canon(golden_results)
    assert report.failed == 0
    # The replication-log invariant: work done before the drain is
    # replayed, never re-run.
    assert report.resumed == completed_a
    assert report.simulated == total - completed_a


# ----------------------------------------------------------------------
# SIGTERM == drain: the operational contract of `repro.serve server`
# ----------------------------------------------------------------------
class TestSigtermDrain:
    def test_sigterm_drains_journals_and_exits_zero(self, tmp_path):
        port = _free_port()
        journal_dir = tmp_path / "journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "server",
             "--port", str(port), "--journal-dir", str(journal_dir),
             "--drain-grace", "0.5"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            client = SweepClient(
                f"http://127.0.0.1:{port}",
                retry=RetryPolicy(attempts=40, base=0.1, cap=0.25),
                breaker=CircuitBreaker(threshold=10_000))
            client.health()  # retries until the server is listening
            reply = client.submit({"jobs": [
                j.fingerprint_payload() for j in grid_jobs()]})
            assert reply["total"] == len(grid_jobs())
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained:" in out
        # No workers attached, so every job journals as interrupted and
        # the run never reaches a run-end summary.
        journalled = "".join(
            p.read_text() for p in journal_dir.rglob("*") if p.is_file())
        assert '"interrupted"' in journalled
        assert "run-end" not in journalled


# ----------------------------------------------------------------------
# client reconnect: submission survives the server not being up yet
# ----------------------------------------------------------------------
def test_submit_before_server_listens_reconnects(tmp_path, golden):
    jobs = grid_jobs()
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    outcome: dict = {}

    def submit_early() -> None:
        client = SweepClient(
            url, submitter="early",
            retry=RetryPolicy(attempts=60, base=0.1, cap=0.25, seed=4),
            breaker=CircuitBreaker(threshold=10_000))
        outcome["results"], outcome["report"] = client.execute(jobs)

    t = threading.Thread(target=submit_early, daemon=True)
    t.start()
    time.sleep(0.3)  # let the first attempts hit the closed port
    cluster = LocalCluster(workers=2, cache_dir=tmp_path / "cache",
                           retries=2, timeout=60.0)
    cluster.server.port = port
    with cluster:
        t.join(timeout=120.0)
    assert not t.is_alive()
    assert canon(outcome["results"]) == golden
    assert outcome["report"].failed == 0


# ----------------------------------------------------------------------
# degraded mode: breaker exhaustion falls back to local execution
# ----------------------------------------------------------------------
class TestLocalFallback:
    def test_dead_server_falls_back_byte_identically(self, tmp_path,
                                                     golden):
        jobs = grid_jobs()
        url = f"http://127.0.0.1:{_free_port()}"  # nobody listening
        cfg = ExecutorConfig(jobs=2, server=url,
                             allow_local_fallback=True,
                             cache_dir=tmp_path / "cache")
        results, report = execute_jobs(jobs, cfg)
        assert canon(results) == golden
        assert report.simulated == len(jobs)
        assert report.failed == 0

    def test_without_the_flag_the_breaker_error_propagates(self):
        url = f"http://127.0.0.1:{_free_port()}"
        cfg = ExecutorConfig(jobs=2, server=url)
        with pytest.raises(CircuitOpenError):
            execute_jobs(grid_jobs(), cfg)


# ----------------------------------------------------------------------
# the overload acceptance run: 3 submitters, refuse/slow/kill chaos,
# fair-share arbitration, drain mid-sweep, restart, byte-identity,
# zero re-simulation, no starvation
# ----------------------------------------------------------------------
def _overload_chaos(hashes) -> ChaosConfig:
    """Seed-search so the run provably exercises every new fault path:
    at least one worker kill, one slow worker, and one client-side
    connection refusal."""
    for seed in range(300):
        c = ChaosConfig(seed=seed, kill_p=0.25, net_refuse_p=0.4,
                        slow_p=0.4, slow_seconds=0.05)
        kills = sum(c.should_kill(h, 0) for h in hashes)
        slows = sum(c.slow_delay(h, 0) > 0 for h in hashes)
        refusals = sum(
            c.should_refuse("client-connect", path, a)
            for path in ("/v1/sweeps", "/v1/health")
            for a in range(4)
        )
        if kills >= 1 and slows >= 1 and refusals >= 1:
            return c
    raise AssertionError("no seed injects enough faults; widen the search")


def test_overloaded_chaotic_drain_restart_acceptance(tmp_path):
    grids = []
    for seed in range(3):
        keyed = jobs_for_grid(
            TWO_THREAD_MIXES[:2], CFG, ("traditional", "2op_ooo"),
            (8,), 2500, seed,
        )
        grids.append([j for _, j in keyed])
    goldens = []
    for jobs in grids:
        results, _ = execute_jobs(jobs, ExecutorConfig(jobs=2))
        goldens.append(canon(results))
    all_hashes = [j.content_hash() for jobs in grids for j in jobs]
    assert len(set(all_hashes)) == len(all_hashes)
    chaos = _overload_chaos(all_hashes)
    cache_dir, journal_dir = tmp_path / "cache", tmp_path / "journal"

    interrupted_submitters: list[str] = []

    def submitter(url: str, name: str, jobs) -> None:
        client = SweepClient(
            url, submitter=name, chaos=chaos,
            retry=RetryPolicy(attempts=12, base=0.05, cap=0.5,
                              seed=hash(name) % 1000),
            breaker=CircuitBreaker(threshold=10_000))
        try:
            client.execute(jobs)
        except SweepInterrupted:
            interrupted_submitters.append(name)

    names = [f"s{i}" for i in range(3)]
    with LocalCluster(workers=2, cache_dir=cache_dir,
                      journal_dir=journal_dir, policy="fair-share",
                      max_in_flight=4, max_queue=100,
                      retries=8, timeout=5.0, heartbeat_grace=2.0,
                      chaos=chaos, respawn=True,
                      drain_grace=0.5) as cluster:
        threads = [
            threading.Thread(target=submitter,
                             args=(cluster.url, name, jobs),
                             daemon=True)
            for name, jobs in zip(names, grids)
        ]
        for t in threads:
            t.start()
        # A chaos-free observer polls health until every submitter has
        # made progress, then pulls the plug mid-sweep.
        observer = SweepClient(cluster.url,
                               breaker=CircuitBreaker(threshold=10_000))
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            shares = observer.health()["submitters"]
            done = [shares.get(n, {}).get("completed", 0) for n in names]
            if all(d >= 1 for d in done):
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"no fair progress before drain: "
                                 f"{shares}")
        summary = cluster.drain()
        # Jobs in flight at drain time may finish inside the grace
        # window, so the authoritative per-submitter counts are the
        # post-drain ones.
        shares_a = {n: observer.health()["submitters"]
                    .get(n, {}).get("completed", 0) for n in names}
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
    assert summary["state"] == "drained"
    # Fair-share under the 4-slot budget: every submitter finished at
    # least one job before the drain — nobody starved.
    assert all(v >= 1 for v in shares_a.values())

    # Restart over the same cache+journal, fault-free: each submitter
    # resubmits and completes byte-identically with zero re-simulation
    # of the pre-drain work.
    total_simulated = 0
    with LocalCluster(workers=2, cache_dir=cache_dir,
                      journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        for name, jobs, gold in zip(names, grids, goldens):
            client = SweepClient(cluster.url, submitter=name)
            results, report = client.execute(jobs)
            assert canon(results) == gold
            assert report.failed == 0
            total_simulated += report.simulated
    # Everything completed before the drain is replayed, never re-run.
    assert total_simulated + sum(shares_a.values()) == len(all_hashes)

"""Tests for the distributed sweep service (``repro.serve``).

The headline invariant, enforced here end to end: a sweep executed by
the service — across real worker processes, under injected worker kills
and dropped/duplicated/delayed frames — completes with results
byte-identical to a fault-free single-host ``execute_jobs`` run, and a
repeat submission simulates nothing. Around it: the consistent-hash
ring's stability property (hypothesis), per-policy result identity,
protocol framing and checksum handling, network-chaos determinism,
cross-submission dedup, journal-backed server restart/resume, and the
``ExecutorConfig(server=...)`` routing of existing sweeps.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import small_machine
from repro.exec import (
    ChaosConfig,
    ExecutorConfig,
    SimJob,
    execute_jobs,
    jobs_for_grid,
)
from repro.exec.cache import encode_job_result
from repro.exec.jobs import JobResult
from repro.serve import (
    POLICIES,
    HashRingPolicy,
    LeastLoadedPolicy,
    LJFPolicy,
    LocalCluster,
    ServerError,
    SweepServer,
    WorkerView,
    make_policy,
    ring_assign,
)
from repro.serve.client import (
    cache_stats,
    execute_remote,
    fetch_results,
    stream_events,
    submit,
)
from repro.serve.protocol import (
    FrameError,
    decode_result_frame,
    encode_result_frame,
    frame_bytes,
    job_from_fingerprint,
    read_frame,
)
from repro.serve.worker import parse_server_url
from repro.workloads.mixes import TWO_THREAD_MIXES

CFG = small_machine()
INSNS = 300


def grid_jobs() -> list[SimJob]:
    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:2], CFG, ("traditional", "2op_ooo"), (8,),
        INSNS, 0,
    )
    return [job for _, job in keyed]


def canon(results) -> list[str]:
    """Byte-level canonical form of a result list, for the invariant."""
    return [json.dumps(encode_job_result(p), sort_keys=True)
            for p in results]


@pytest.fixture(scope="module")
def golden():
    """Fault-free single-host results for the module's 4-point grid."""
    jobs = grid_jobs()
    results, report = execute_jobs(jobs, ExecutorConfig(jobs=1))
    assert report.simulated == len(jobs)
    return canon(results)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """One fault-free loopback cluster shared by the happy-path tests."""
    root = tmp_path_factory.mktemp("serve")
    with LocalCluster(
        workers=2, cache_dir=root / "cache", journal_dir=root / "journal",
        retries=2, timeout=60.0,
    ) as c:
        yield c


# ----------------------------------------------------------------------
# consistent hashing: the stability property
# ----------------------------------------------------------------------
job_hashes = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
    min_size=1, max_size=40, unique=True,
)
worker_sets = st.lists(
    st.text(alphabet="wxyz", min_size=1, max_size=4),
    min_size=1, max_size=6, unique=True,
)


class TestRingAssign:
    @given(job_hashes, worker_sets)
    @settings(max_examples=60)
    def test_join_moves_keys_only_to_new_worker(self, keys, workers):
        joined = workers + ["newcomer"]
        for key in keys:
            before = ring_assign(key, workers)
            after = ring_assign(key, joined)
            assert after in (before, "newcomer")

    @given(job_hashes, worker_sets)
    @settings(max_examples=60)
    def test_leave_moves_only_departed_workers_keys(self, keys, workers):
        if len(workers) < 2:
            return
        departed = workers[0]
        rest = workers[1:]
        for key in keys:
            before = ring_assign(key, workers)
            after = ring_assign(key, rest)
            if before != departed:
                assert after == before

    @given(job_hashes, worker_sets)
    @settings(max_examples=30)
    def test_assignment_is_deterministic_and_order_free(self, keys,
                                                        workers):
        for key in keys:
            assert ring_assign(key, workers) == \
                   ring_assign(key, list(reversed(workers)))

    def test_churn_is_about_one_over_n(self):
        # With 5 workers, adding a 6th should move ~1/6 of keys; virtual
        # nodes keep the realised fraction in the right ballpark.
        keys = [f"{i:04x}" for i in range(600)]
        workers = [f"w{i}" for i in range(5)]
        before = {k: ring_assign(k, workers) for k in keys}
        after = {k: ring_assign(k, workers + ["w5"]) for k in keys}
        moved = sum(before[k] != after[k] for k in keys)
        assert 0.05 < moved / len(keys) < 0.35

    def test_empty_worker_set_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ring_assign("abcd", [])


# ----------------------------------------------------------------------
# allocation policies (pure, no server)
# ----------------------------------------------------------------------
class TestPolicies:
    def test_registry_and_factory(self):
        assert set(POLICIES) == {"hash-ring", "least-loaded", "ljf"}
        assert isinstance(make_policy("hash-ring"), HashRingPolicy)
        with pytest.raises(ValueError, match="unknown allocation policy"):
            make_policy("round-robin")

    def test_hash_ring_honours_owner_even_when_busy(self):
        policy = HashRingPolicy()
        workers = [WorkerView("a", slots=1, in_flight=0),
                   WorkerView("b", slots=1, in_flight=0)]
        owner = policy.pick_worker("feed", 1.0, workers)
        assert owner == ring_assign("feed", ["a", "b"])
        # Fill the owner: the job must stay queued, not migrate.
        for w in workers:
            if w.name == owner:
                w.in_flight = 1
        assert policy.pick_worker("feed", 1.0, workers) is None

    def test_least_loaded_picks_most_free_name_tiebreak(self):
        policy = LeastLoadedPolicy()
        workers = [WorkerView("b", slots=4, in_flight=1),
                   WorkerView("a", slots=4, in_flight=1),
                   WorkerView("c", slots=4, in_flight=3)]
        assert policy.pick_worker("h", 1.0, workers) == "a"
        assert policy.pick_worker(
            "h", 1.0, [WorkerView("a", 1, 1), WorkerView("b", 1, 1)]
        ) is None

    def test_queue_orders(self):
        pending = [("aa", 1.0), ("bb", 3.0), ("cc", 2.0)]
        assert LeastLoadedPolicy().queue_order(pending) == \
               ["aa", "bb", "cc"]
        assert LJFPolicy().queue_order(pending) == ["bb", "cc", "aa"]


# ----------------------------------------------------------------------
# wire protocol: framing, checksums, network chaos
# ----------------------------------------------------------------------
class TestProtocol:
    def _payload(self) -> JobResult:
        return grid_jobs()[0].run()

    def test_result_frame_roundtrip_is_byte_stable(self):
        payload = self._payload()
        frame = encode_result_frame("abcd", 0, payload)
        decoded = decode_result_frame(frame)
        assert canon([decoded]) == canon([payload])

    def test_checksum_mismatch_treated_as_lost(self):
        frame = encode_result_frame("abcd", 0, self._payload())
        frame["body"]["result"]["cycles"] += 1
        assert decode_result_frame(frame) is None

    def test_raw_body_kind_roundtrip(self):
        frame = encode_result_frame("abcd", 1, {"answer": 42})
        assert frame["body_kind"] == "raw"
        assert decode_result_frame(frame) == {"answer": 42}

    def test_job_from_fingerprint_preserves_hash(self):
        job = grid_jobs()[0]
        rebuilt = job_from_fingerprint(job.fingerprint_payload())
        assert rebuilt.content_hash() == job.content_hash()

    def test_read_frame_roundtrip_and_eof(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame_bytes({"type": "heartbeat"}))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = asyncio.run(go())
        assert first == {"type": "heartbeat"}
        assert second is None

    def test_read_frame_rejects_torn_and_typeless(self):
        async def torn():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"type": "hea')  # no newline, then EOF
            reader.feed_eof()
            return await read_frame(reader)

        async def typeless():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"hello": 1}\n')
            return await read_frame(reader)

        with pytest.raises(FrameError, match="mid-frame"):
            asyncio.run(torn())
        with pytest.raises(FrameError, match="without a type"):
            asyncio.run(typeless())

    def test_oversized_frame_spans_stream_limit(self):
        # Larger than the default StreamReader buffer (64 KiB) but under
        # MAX_FRAME_BYTES: the chunked fallback must reassemble it.
        big = {"type": "result", "blob": "x" * 200_000}

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame_bytes(big))
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(go()) == big

    def test_net_chaos_deterministic_and_keyed_by_attempt(self):
        c1 = ChaosConfig(seed=11, net_drop_p=0.4, net_dup_p=0.3,
                         net_delay_p=0.5, net_delay_max=0.02)
        c2 = ChaosConfig(seed=11, net_drop_p=0.4, net_dup_p=0.3,
                         net_delay_p=0.5, net_delay_max=0.02)
        keys = [f"{i:03x}" for i in range(40)]
        faults1 = [c1.net_fault("serve-dispatch", k, 0) for k in keys]
        assert faults1 == [c2.net_fault("serve-dispatch", k, 0)
                           for k in keys]
        assert "drop" in faults1 and "dup" in faults1
        # Retries must be able to converge: the same key draws fresh
        # fault decisions at the next attempt.
        assert faults1 != [c1.net_fault("serve-dispatch", k, 1)
                           for k in keys]
        # Sites are independent fault populations.
        assert faults1 != [c1.net_fault("serve-result", k, 0)
                           for k in keys]
        delays = [c1.net_delay("serve-dispatch", k, 0) for k in keys]
        assert all(0.0 <= d <= 0.02 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_net_knobs_parse_and_gate(self):
        c = ChaosConfig.parse(
            "net_drop=0.2,net_dup=0.1,net_delay=0.3,net_delay_max=0.01"
        )
        assert (c.net_drop_p, c.net_dup_p, c.net_delay_p) == \
               (0.2, 0.1, 0.3)
        assert c.net_delay_max == 0.01
        assert c.net_enabled and c.enabled
        assert not ChaosConfig(seed=5).net_enabled
        # Kill-only chaos is enabled but has no network component.
        assert not ChaosConfig(kill_p=0.5).net_enabled


class TestWorkerUrl:
    def test_parse(self):
        assert parse_server_url("http://127.0.0.1:8742") == \
               ("127.0.0.1", 8742)

    def test_rejects_bad_urls(self):
        with pytest.raises(ValueError, match="unsupported scheme"):
            parse_server_url("ftp://host:1")
        with pytest.raises(ValueError, match="host:port"):
            parse_server_url("http://hostonly")


# ----------------------------------------------------------------------
# server-side dedup across submissions (in-process, no workers)
# ----------------------------------------------------------------------
class TestSubmissionDedup:
    def test_identical_submissions_attach_to_one_sweep(self):
        async def go():
            server = SweepServer()
            await server.start()
            try:
                jobs = grid_jobs()
                first = server.submit(list(jobs))
                second = server.submit(list(jobs))
                # Content-derived sweep id: the second submission joins
                # the in-flight sweep instead of re-queueing the grid.
                assert second is first
                assert len(server.jobs) == len(jobs)
            finally:
                await server.stop()

        asyncio.run(go())

    def test_overlapping_grids_share_job_states(self):
        async def go():
            server = SweepServer()
            await server.start()
            try:
                jobs = grid_jobs()
                server.submit(jobs[:3])
                server.submit(jobs[1:])
                overlap = jobs[1].content_hash()
                st = server.jobs[overlap]
                # One _JobState, two ledgers waiting on it.
                assert len(st.waiters) == 2
                assert len(server.jobs) == len(jobs)
            finally:
                await server.stop()

        asyncio.run(go())


# ----------------------------------------------------------------------
# end to end: loopback cluster vs the single-host golden run
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_cold_then_warm_matches_golden(self, cluster, golden):
        jobs = grid_jobs()
        cold, cold_report = execute_remote(jobs, cluster.url)
        assert canon(cold) == golden
        assert cold_report.simulated == len(jobs)
        warm, warm_report = execute_remote(jobs, cluster.url)
        assert canon(warm) == golden
        assert warm_report.simulated == 0
        # The journal (replication log) replays ahead of the cache
        # pass, so a warm re-submission resolves as resumed + cached.
        assert warm_report.resumed + warm_report.cached == len(jobs)

    def test_executor_config_server_routes_execute_jobs(self, cluster,
                                                        golden):
        results, report = execute_jobs(
            grid_jobs(), ExecutorConfig(server=cluster.url)
        )
        assert canon(results) == golden
        assert report.failed == 0

    def test_progress_stream_counts(self, cluster):
        jobs = grid_jobs()
        seen: list[str] = []
        _, report = execute_remote(
            jobs, cluster.url, progress=lambda p: seen.append(p.outcome)
        )
        assert len(seen) == len(jobs)
        assert report.completed == len(jobs)

    def test_event_stream_replays_history(self, cluster):
        jobs = grid_jobs()
        reply = submit(cluster.url,
                       {"jobs": [j.fingerprint_payload() for j in jobs]})
        events = list(stream_events(cluster.url, reply["sweep"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep-start"
        assert kinds[-1] == "sweep-end"
        assert len([k for k in kinds
                    if k in ("cached", "resumed", "simulated")]) == \
               len(jobs)

    def test_grid_submission_vocabulary(self, cluster, golden):
        names = [m.name for m in TWO_THREAD_MIXES[:2]]
        reply = submit(cluster.url, {"grid": {
            "profile": "small", "threads": 2, "mixes": names,
            "schedulers": ["traditional", "2op_ooo"], "iq_sizes": [8],
            "max_insns": INSNS, "seed": 0,
        }})
        assert reply["total"] == len(golden)
        results, report = fetch_results(cluster.url, reply["sweep"])
        # A grid expanded server-side hashes identically to the same
        # grid submitted as explicit fingerprints.
        assert canon(results) == golden
        assert report.failed == 0

    def test_bad_submissions_rejected(self, cluster):
        with pytest.raises(ServerError, match="bad submission"):
            submit(cluster.url, {"grid": {"profile": "huge"}})
        with pytest.raises(ServerError, match='"jobs", "grid" or'):
            submit(cluster.url, {})

    def test_unknown_sweep_is_404(self, cluster):
        with pytest.raises(ServerError, match="404"):
            fetch_results(cluster.url, "no-such-sweep")

    def test_cache_endpoint_matches_cli_struct(self, cluster):
        stats = cache_stats(cluster.url)
        assert stats["entries"] == len(grid_jobs())
        assert {"kind": "sim", "entries": stats["entries"],
                "bytes": stats["total_bytes"]} in stats["by_kind"]
        # Per-run hit/miss counters persisted by the server's ledger
        # (same files `python -m repro.exec cache stats` aggregates).
        assert stats["runs"] >= 1
        assert stats["hits"] >= 0 and stats["misses"] >= 0


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_is_placement_only(tmp_path, golden, policy):
    """Acceptance: placement strategy can never change the bytes."""
    jobs = grid_jobs()
    with LocalCluster(
        workers=2, cache_dir=tmp_path / "cache", policy=policy,
        retries=2, timeout=60.0,
    ) as cluster:
        results, report = execute_remote(jobs, cluster.url)
    assert canon(results) == golden
    assert report.failed == 0


# ----------------------------------------------------------------------
# the acceptance invariant: chaos cluster == fault-free single host
# ----------------------------------------------------------------------
def chaos_for(hashes) -> ChaosConfig:
    """Deterministically pick a seed whose attempt-0 draws inject at
    least one worker kill and one dropped frame, so the test provably
    exercises the recovery paths — never flaky, never vacuous."""
    for seed in range(300):
        c = ChaosConfig(
            seed=seed, kill_p=0.3, net_drop_p=0.2, net_dup_p=0.2,
            net_delay_p=0.3, net_delay_max=0.02,
        )
        kills = sum(c.should_kill(h, 0) for h in hashes)
        drops = sum(
            c.net_fault(site, h, 0) == "drop"
            for h in hashes for site in ("serve-dispatch", "serve-result")
        )
        dups = sum(
            c.net_fault(site, h, a) == "dup"
            for h in hashes for site in ("serve-dispatch", "serve-result")
            for a in (0, 1)
        )
        if kills >= 1 and drops >= 1 and dups >= 1:
            return c
    raise AssertionError("no seed injects enough faults; widen the search")


def test_chaotic_cluster_matches_golden(tmp_path, golden):
    """Acceptance: >= 2 workers under worker kills + dropped/duplicated/
    delayed frames — byte-identical results, then a zero-simulation
    repeat submission."""
    jobs = grid_jobs()
    chaos = chaos_for([j.content_hash() for j in jobs])
    with LocalCluster(
        workers=2, cache_dir=tmp_path / "cache",
        journal_dir=tmp_path / "journal", chaos=chaos, respawn=True,
        retries=8, timeout=5.0, heartbeat_grace=2.0,
    ) as cluster:
        cold, cold_report = execute_remote(jobs, cluster.url)
        warm, warm_report = execute_remote(jobs, cluster.url)
    assert canon(cold) == golden
    assert cold_report.failed == 0
    # At least one attempt died with its worker and was re-dispatched.
    assert cold_report.retried >= 1
    assert canon(warm) == golden
    assert warm_report.simulated == 0


# ----------------------------------------------------------------------
# the journal as replication log: server restart, zero re-simulation
# ----------------------------------------------------------------------
def test_server_restart_resumes_from_journal(tmp_path, golden):
    jobs = grid_jobs()
    journal_dir = tmp_path / "journal"  # no cache: the journal alone
    with LocalCluster(workers=2, journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        first, first_report = execute_remote(jobs, cluster.url)
    assert canon(first) == golden
    assert first_report.simulated == len(jobs)

    # "Restart": a brand-new server process over the same journal root.
    with LocalCluster(workers=2, journal_dir=journal_dir,
                      retries=2, timeout=60.0) as cluster:
        again, report = execute_remote(jobs, cluster.url)
    assert canon(again) == golden
    assert report.simulated == 0
    assert report.resumed == len(jobs)

"""Byte-stability of the committed-JSON canonical form.

Every committed machine-written artifact (the perf baseline, the flow
and mutation baselines) is produced by ``stable_dumps``; these tests
pin the two properties the gates rely on: encode→decode→encode is a
fixed point, and the artifacts actually in the tree are already in
canonical form (so a refresh with unchanged data is a no-op diff).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.util.encoding import stable_dumps

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Every JSON artifact committed to the repository. Enumerated
#: explicitly (not globbed) so a new baseline must be added here and
#: is then held to the byte-stability contract forever.
COMMITTED_JSON = (
    "BENCH_sim_speed.json",
    "results/flow_baseline.json",
    "results/mutation_baseline.json",
)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)

_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=20), children, max_size=5),
    ),
    max_leaves=25,
)


@given(_payloads)
def test_encode_decode_encode_is_fixed_point(payload):
    once = stable_dumps(payload)
    again = stable_dumps(json.loads(once))
    assert once == again


@given(_payloads)
def test_decode_round_trips_values(payload):
    decoded = json.loads(stable_dumps(payload))

    def normalise(value):
        # JSON collapses int-valued floats' identity (2.0 stays 2.0),
        # but NaN-free floats must round-trip exactly.
        if isinstance(value, list):
            return [normalise(v) for v in value]
        if isinstance(value, dict):
            return {k: normalise(v) for k, v in value.items()}
        if isinstance(value, float):
            assert not math.isnan(value)
        return value

    assert normalise(decoded) == normalise(payload)


def test_stable_dumps_shape():
    text = stable_dumps({"b": 1, "a": [1.5, None, True]})
    assert text.endswith("\n")
    assert text == (
        '{\n  "a": [\n    1.5,\n    null,\n    true\n  ],\n  "b": 1\n}\n'
    )


def test_all_committed_baselines_are_canonical():
    """Each committed artifact is byte-identical to its own re-encoding."""
    checked = 0
    for rel in COMMITTED_JSON:
        path = REPO_ROOT / rel
        assert path.exists(), f"missing committed baseline: {rel}"
        text = path.read_text(encoding="utf-8")
        assert stable_dumps(json.loads(text)) == text, (
            f"{rel} is not in stable_dumps canonical form"
        )
        checked += 1
    assert checked >= 3

"""Shared analysis-CLI plumbing: ``--select``/``--ignore`` filters,
``--changed-only`` narrowing, and the exit-code vocabulary (clean /
regression / usage / stale-baseline) with rebaseline hints.
"""

from __future__ import annotations

import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.common import (
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_STALE_BASELINE,
    EXIT_USAGE,
    filter_by_code,
    parse_codes,
    restrict_to_changed,
)
from repro.analysis.lint import main

GIT = shutil.which("git") is not None


def write_tree(root: Path, files: dict[str, str]) -> Path:
    proj = root / "proj"
    for rel, source in files.items():
        path = proj / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return proj


#: One RPR001 (wall clock) and one RPR007 (swallowed exception).
LINT_MIXED = {
    "clock.py": "import time\n",
    "swallow.py": "try:\n    work()\nexcept OSError:\n    pass\n",
}

#: The canonical RPR009 flow fixture: a hot loop calling an allocator.
FLOW_DIRTY = {
    "pipeline/loop.py": """\
        def run(core):  # repro: hot
            return helper(core)


        def helper(core):
            return [0, 1]
        """,
}


# ----------------------------------------------------------------------
# code-list parsing and filtering (unit level)
# ----------------------------------------------------------------------
class TestCodeFilters:
    def test_parse_codes_normalises(self):
        assert parse_codes("rpr001, RPR007,") == {"RPR001", "RPR007"}
        assert parse_codes(None) is None
        assert parse_codes(" , ") is None

    def test_rpr000_survives_ignore(self):
        class V:
            def __init__(self, code):
                self.code = code

        vs = [V("RPR000"), V("RPR001")]
        kept = filter_by_code(vs, None, frozenset({"RPR000", "RPR001"}))
        assert [v.code for v in kept] == ["RPR000"]
        # ... but an explicit --select that omits it is honoured.
        assert filter_by_code(vs, frozenset({"RPR001"}), None)[0].code \
            == "RPR001"


# ----------------------------------------------------------------------
# lint --select / --ignore
# ----------------------------------------------------------------------
class TestLintSelectIgnore:
    def test_select_narrows_reporting(self, tmp_path, capsys):
        root = write_tree(tmp_path, LINT_MIXED)
        assert main(["lint", str(root), "--select", "RPR001"]) \
            == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR007" not in out

    def test_ignore_everything_is_clean(self, tmp_path, capsys):
        root = write_tree(tmp_path, LINT_MIXED)
        assert main(["lint", str(root), "--ignore", "RPR001,RPR007"]) \
            == EXIT_CLEAN

    def test_parse_failure_cannot_be_ignored(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"broken.py": "def broken(:\n"})
        assert main(["lint", str(root), "--ignore", "RPR000"]) \
            == EXIT_REGRESSION
        assert "RPR000" in capsys.readouterr().out


# ----------------------------------------------------------------------
# --changed-only (against a real scratch git repository)
# ----------------------------------------------------------------------
def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ("git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *args),
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.mark.skipif(not GIT, reason="needs the git binary")
class TestChangedOnly:
    def _scratch_repo(self, tmp_path: Path) -> Path:
        repo = tmp_path / "scratch"
        repo.mkdir()
        _git(repo, "init", "-q", "-b", "main")
        (repo / "committed_clock.py").write_text("import time\n",
                                                 encoding="utf-8")
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "seed")
        # A brand-new (untracked) violating file: the only "change".
        (repo / "new_clock.py").write_text("x = time.perf_counter()\n",
                                           encoding="utf-8")
        return repo

    def test_lint_reports_only_changed_files(self, tmp_path, capsys,
                                             monkeypatch):
        repo = self._scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        assert main(["lint", str(repo), "--changed-only"]) \
            == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "new_clock.py" in out
        assert "committed_clock.py" not in out

    def test_without_the_flag_everything_is_reported(self, tmp_path,
                                                     capsys, monkeypatch):
        repo = self._scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        assert main(["lint", str(repo)]) == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "new_clock.py" in out and "committed_clock.py" in out

    def test_unresolvable_git_state_falls_back_to_everything(
            self, tmp_path, capsys, monkeypatch):
        # An unknown base ref: restrict_to_changed warns and returns
        # None, and the CLI analyses the full roots rather than nothing.
        repo = self._scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        assert restrict_to_changed([repo], "no-such-ref") is None
        assert "--changed-only" in capsys.readouterr().err
        assert main(["lint", str(repo), "--changed-only",
                     "--base", "no-such-ref"]) == EXIT_REGRESSION
        assert "committed_clock.py" in capsys.readouterr().out


# ----------------------------------------------------------------------
# flow exit codes: regression hint, stale baseline, filters
# ----------------------------------------------------------------------
class TestFlowExitCodes:
    def test_violation_prints_the_rebaseline_command(self, tmp_path,
                                                     capsys):
        root = write_tree(tmp_path, FLOW_DIRTY)
        assert main(["flow", str(root), "--no-baseline"]) \
            == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "accept deliberately" in out
        assert f"python -m repro.analysis flow {root} --update-baseline" \
            in out

    def test_missing_explicit_baseline_is_a_usage_error(self, tmp_path):
        root = write_tree(tmp_path, FLOW_DIRTY)
        missing = tmp_path / "nope.json"
        assert main(["flow", str(root), "--baseline", str(missing)]) \
            == EXIT_USAGE

    def test_stale_baseline_exits_three_with_refresh_hint(self, tmp_path,
                                                          capsys):
        root = write_tree(tmp_path, FLOW_DIRTY)
        baseline = tmp_path / "flow_baseline.json"
        assert main(["flow", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == EXIT_CLEAN
        # The hot-path allocation is fixed; the recorded finding is now
        # stale and the gate must say so distinctly (exit 3, not 0/1).
        (root / "pipeline" / "loop.py").write_text(
            "def run(core):  # repro: hot\n    return 1\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["flow", str(root), "--baseline", str(baseline)]) \
            == EXIT_STALE_BASELINE
        out = capsys.readouterr().out
        assert "stale baseline" in out
        assert "refresh it" in out
        assert "--update-baseline" in out

    def test_filtered_view_never_judges_staleness(self, tmp_path, capsys):
        # A narrowed report cannot see every recorded finding, so it
        # must not claim the baseline is stale.
        root = write_tree(tmp_path, FLOW_DIRTY)
        baseline = tmp_path / "flow_baseline.json"
        assert main(["flow", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == EXIT_CLEAN
        (root / "pipeline" / "loop.py").write_text(
            "def run(core):  # repro: hot\n    return 1\n",
            encoding="utf-8",
        )
        assert main(["flow", str(root), "--baseline", str(baseline),
                     "--select", "RPR009"]) == EXIT_CLEAN

    def test_ignore_filters_flow_findings(self, tmp_path):
        root = write_tree(tmp_path, FLOW_DIRTY)
        assert main(["flow", str(root), "--no-baseline",
                     "--ignore", "RPR009"]) == EXIT_CLEAN

"""Metric tests: aggregation, fairness, SimResult."""

import math

import pytest

from repro.metrics.aggregate import geometric_mean, harmonic_mean, speedup
from repro.metrics.fairness import harmonic_weighted_ipc, weighted_ipcs
from repro.metrics.ipc import SimResult
from repro.pipeline.stats import PipelineStats


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([3.0]) == 3.0

    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_dominated_by_smallest(self):
        assert harmonic_mean([0.1, 10.0]) < 0.25

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        vals = [0.5, 1.5, 2.5, 4.0]
        assert harmonic_mean(vals) <= sum(vals) / len(vals)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_between_harmonic_and_arithmetic(self):
        vals = [0.5, 1.5, 2.5, 4.0]
        g = geometric_mean(vals)
        assert harmonic_mean(vals) <= g <= sum(vals) / len(vals)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestSpeedup:
    def test_parity(self):
        assert speedup(2.0, 2.0) == 1.0

    def test_improvement(self):
        assert speedup(3.0, 2.0) == 1.5

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestFairness:
    def test_weighted_ipcs(self):
        assert weighted_ipcs([1.0, 2.0], [2.0, 2.0]) == [0.5, 1.0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_ipcs([1.0], [1.0, 2.0])

    def test_zero_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_ipcs([1.0], [0.0])

    def test_harmonic_weighted_balanced(self):
        # Both threads run at half their solo speed: fairness 0.5.
        assert harmonic_weighted_ipc([1.0, 2.0], [2.0, 4.0]) == \
            pytest.approx(0.5)

    def test_harmonic_punishes_starvation(self):
        balanced = harmonic_weighted_ipc([1.0, 1.0], [2.0, 2.0])
        starved = harmonic_weighted_ipc([1.9, 0.1], [2.0, 2.0])
        assert starved < balanced

    def test_zero_mix_ipc_gives_zero(self):
        assert harmonic_weighted_ipc([0.0, 1.0], [1.0, 1.0]) == 0.0


class TestSimResult:
    def _result(self):
        stats = PipelineStats(num_threads=2)
        stats.cycles = 100
        stats.committed = [150, 50]
        stats.committed_total = 200
        return SimResult.from_stats(("a", "b"), "traditional", 64, stats)

    def test_throughput(self):
        r = self._result()
        assert r.throughput_ipc == 2.0
        assert r.per_thread_ipc == (1.5, 0.5)
        assert r.num_threads == 2

    def test_extras_accessible(self):
        r = self._result()
        assert r.extra("throughput_ipc") == 2.0
        assert r.extra("not_a_stat", default=-1.0) == -1.0

    def test_zero_cycles(self):
        stats = PipelineStats(num_threads=1)
        r = SimResult.from_stats(("a",), "traditional", 64, stats)
        assert r.throughput_ipc == 0.0

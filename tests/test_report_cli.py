"""Report formatting and CLI tests."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.report import (
    format_table,
    render_dict,
    render_figure,
    render_same_size_ratios,
)
from repro.experiments.cli import build_parser, main


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), (30, 4.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "30" in lines[3]

    def test_float_precision(self):
        out = format_table(["x"], [(1.23456,)], precision=2)
        assert "1.23" in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestRenderFigure:
    def _result(self):
        return FigureResult(
            figure="figureX", metric="test metric", iq_sizes=(8, 16),
            series={"traditional": [1.0, 1.1], "2op_block": [0.9, 0.8]},
        )

    def test_render(self):
        out = render_figure(self._result())
        assert "figureX" in out
        assert "traditional" in out and "2op_block" in out

    def test_ratios(self):
        out = render_same_size_ratios(self._result(), "2op_block",
                                      "traditional")
        assert "-10.0%" in out

    def test_ratios_unknown_series(self):
        with pytest.raises(KeyError):
            render_same_size_ratios(self._result(), "nope", "traditional")


class TestRenderDict:
    def test_flat(self):
        out = render_dict("title", {"a": 1.5})
        assert "title" in out and "a" in out

    def test_nested(self):
        out = render_dict("t", {"x": {"y": 2.0}})
        assert "x.y" in out


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_command(self, capsys):
        rc = main(["mix", "gzip", "--iq", "16", "--insns", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput_ipc" in out
        assert "gzip" in out

    def test_mix_command_scheduler(self, capsys):
        rc = main(["mix", "gzip", "parser", "--scheduler", "2op_ooo",
                   "--insns", "800"])
        assert rc == 0
        assert "2op_ooo" in capsys.readouterr().out

    def test_figure_command_smallest(self, capsys):
        rc = main(["figure", "1", "--iq-sizes", "16", "--insns", "500",
                   "--mixes", "1"])
        assert rc == 0
        assert "figure1" in capsys.readouterr().out

    def test_bad_figure_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "2"])

    def test_stalls_command(self, capsys):
        rc = main(["stalls", "--insns", "500", "--mixes", "1"])
        assert rc == 0
        assert "threads" in capsys.readouterr().out

"""Tests for the custom AST lint pass (``repro.analysis.lint``).

Each rule gets fixture snippets that must trigger it (and near-miss
snippets that must not), plus an end-to-end check that the shipped
``src/repro`` tree is clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import (
    LINT_RULES,
    discover_declared_counters,
    lint_paths,
    lint_source,
    main,
)

DECLARED = frozenset({"cycles", "committed", "committed_total", "issued"})


def codes(source: str, path: str = "repro/core/example.py",
          declared=DECLARED) -> list[str]:
    return [
        v.code
        for v in lint_source(source, path=path, declared_counters=declared)
    ]


# ----------------------------------------------------------------------
# RPR001 — determinism (wall clock / random)
# ----------------------------------------------------------------------
class TestRPR001:
    def test_import_random(self):
        assert codes("import random\n") == ["RPR001"]

    def test_import_time(self):
        assert codes("import time\n") == ["RPR001"]

    def test_from_import(self):
        assert codes("from random import randint\n") == ["RPR001"]
        assert codes("from time import monotonic\n") == ["RPR001"]

    def test_wallclock_calls(self):
        assert codes("t = time.perf_counter()\n") == ["RPR001"]
        assert codes("now = datetime.now()\n") == ["RPR001"]

    def test_numpy_random_call(self):
        assert codes("rng = np.random.default_rng(0)\n") == ["RPR001"]

    def test_random_module_call(self):
        assert codes("x = random.random()\n") == ["RPR001"]

    def test_annotation_is_not_a_call(self):
        src = "def f(rng: np.random.Generator) -> None:\n    pass\n"
        assert codes(src) == []

    def test_rng_module_is_exempt(self):
        src = "rng = np.random.default_rng(0)\n"
        assert codes(src, path="src/repro/util/rng.py") == []

    def test_unrelated_attribute_clean(self):
        assert codes("x = obj.timestamp\n") == []

    @pytest.mark.parametrize("call", [
        "os.urandom(16)",
        "uuid.uuid4()",
        "time.clock_gettime(0)",
        "time.clock_gettime_ns(0)",
    ])
    def test_entropy_and_clock_gettime_calls_flagged(self, call):
        assert codes(f"x = {call}\n") == ["RPR001"]

    def test_os_and_uuid_imports_are_not_flagged(self):
        # Only the calls are nondeterministic; the modules themselves
        # are pervasive (paths, IDs in reports) and stay importable.
        assert codes("import os\nimport uuid\n") == []


# ----------------------------------------------------------------------
# RPR002 — mutable default arguments
# ----------------------------------------------------------------------
class TestRPR002:
    @pytest.mark.parametrize("default", ["[]", "{}", "{1}", "list()",
                                         "dict()", "set()", "deque()",
                                         "collections.defaultdict(list)"])
    def test_mutable_defaults_flagged(self, default):
        assert codes(f"def f(x={default}):\n    return x\n") == ["RPR002"]

    def test_kwonly_default_flagged(self):
        assert codes("def f(*, x=[]):\n    return x\n") == ["RPR002"]

    def test_immutable_defaults_clean(self):
        src = "def f(a=None, b=0, c=(), d='x', e=frozenset()):\n    pass\n"
        assert codes(src) == []


# ----------------------------------------------------------------------
# RPR003 — undeclared PipelineStats counters
# ----------------------------------------------------------------------
class TestRPR003:
    def test_undeclared_counter_flagged(self):
        assert codes("stats.bogus_counter += 1\n") == ["RPR003"]

    def test_undeclared_assignment_flagged(self):
        assert codes("core.stats.typo_total = 5\n") == ["RPR003"]

    def test_declared_counter_clean(self):
        assert codes("stats.cycles += 1\n") == []
        assert codes("self.stats.committed_total += 1\n") == []

    def test_subscripted_counter_uses_attribute_name(self):
        assert codes("stats.committed[ts.tid] += 1\n") == []
        assert codes("stats.bogus[ts.tid] += 1\n") == ["RPR003"]

    def test_assigning_the_stats_object_itself_is_clean(self):
        assert codes("self.stats = PipelineStats()\n") == []

    def test_rule_skipped_without_declared_set(self):
        assert codes("stats.bogus_counter += 1\n", declared=None) == []

    def test_discovery_on_real_tree(self):
        declared = discover_declared_counters(
            [Path(repro.__file__).parent]
        )
        assert declared is not None
        assert "committed_total" in declared
        assert "sanitizer_checks" in declared


# ----------------------------------------------------------------------
# RPR004 — cross-thread mutation outside the cycle loop
# ----------------------------------------------------------------------
class TestRPR004:
    def test_mutation_flagged(self):
        assert codes("core.threads[0].icount = 5\n") == ["RPR004"]
        assert codes("self.threads[tid].stalled_until += 4\n") == ["RPR004"]

    def test_nested_attribute_mutation_flagged(self):
        assert codes("core.threads[i].lsq.count = 0\n") == ["RPR004"]

    def test_read_access_clean(self):
        assert codes("x = core.threads[0].icount\n") == []

    def test_cycle_loop_is_exempt(self):
        src = "self.threads[instr.tid].pending_long_misses -= 1\n"
        assert codes(src, path="src/repro/pipeline/smt_core.py") == []

    def test_other_subscripts_clean(self):
        assert codes("buckets[0].value = 1\n") == []


# ----------------------------------------------------------------------
# RPR005 — float accumulation into cycle/ipc counters
# ----------------------------------------------------------------------
class TestRPR005:
    def test_float_literal_flagged(self):
        assert codes("stats.cycles += 0.5\n") == ["RPR005"]

    def test_division_flagged(self):
        assert codes("total_cycles += work / width\n") == ["RPR005"]
        assert codes("ipc_sum += a / b\n") == ["RPR005"]

    def test_float_call_flagged(self):
        assert codes("self.cycle += float(n)\n") == ["RPR005"]

    def test_integer_accumulation_clean(self):
        assert codes("stats.cycles += 1\n") == []
        assert codes("blocked_2op_cycles += n // 2\n") == []

    def test_non_counter_names_clean(self):
        assert codes("total += a / b\n") == []
        assert codes("residency_sum += a / b\n") == []


# ----------------------------------------------------------------------
# RPR006 — benchmarks must route through repro.exec
# ----------------------------------------------------------------------
class TestRPR006:
    BENCH = "benchmarks/bench_example.py"

    def test_direct_simulate_mix_flagged(self):
        src = "r = simulate_mix(mix, cfg)\n"
        assert codes(src, path=self.BENCH) == ["RPR006"]

    def test_dotted_call_flagged(self):
        src = "r = runner.simulate_mix_with_fairness(mix, cfg)\n"
        assert codes(src, path=self.BENCH) == ["RPR006"]

    def test_direct_processor_construction_flagged(self):
        src = "core = SMTProcessor(cfg, traces)\n"
        assert codes(src, path=self.BENCH) == ["RPR006"]

    def test_same_code_outside_benchmarks_is_clean(self):
        assert codes("r = simulate_mix(mix, cfg)\n") == []

    def test_executor_route_is_clean(self):
        src = "payloads, report = execute_jobs(jobs, EXECUTOR)\n"
        assert codes(src, path=self.BENCH) == []

    def test_noqa_escape(self):
        src = "core = SMTProcessor(cfg, traces)  # repro: noqa[RPR006]\n"
        assert codes(src, path=self.BENCH) == []

    def test_reference_without_call_is_clean(self):
        # Imports / bare names are fine; only invoking the simulator
        # directly bypasses the executor.
        src = "from repro.experiments.runner import simulate_mix\n"
        assert codes(src, path=self.BENCH) == []


# ----------------------------------------------------------------------
# RPR007 — silently-swallowed exceptions
# ----------------------------------------------------------------------
class TestRPR007:
    def test_pass_body_flagged(self):
        src = "try:\n    work()\nexcept OSError:\n    pass\n"
        assert codes(src) == ["RPR007"]

    def test_bare_except_flagged(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert codes(src) == ["RPR007"]

    def test_continue_in_loop_flagged(self):
        src = (
            "for x in xs:\n"
            "    try:\n"
            "        work(x)\n"
            "    except ValueError:\n"
            "        continue\n"
        )
        assert codes(src) == ["RPR007"]

    def test_constant_return_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        return parse()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert codes(src) == ["RPR007"]

    def test_tuple_of_exceptions_flagged(self):
        src = "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n"
        assert codes(src) == ["RPR007"]

    def test_flag_anchors_on_except_line(self):
        src = "try:\n    work()\nexcept OSError:\n    pass\n"
        out = lint_source(src, path="repro/core/example.py",
                          declared_counters=DECLARED)
        assert [(v.code, v.line) for v in out] == [("RPR007", 3)]

    def test_reraise_clean(self):
        src = (
            "try:\n"
            "    work()\n"
            "except OSError as exc:\n"
            "    raise RuntimeError('x') from exc\n"
        )
        assert codes(src) == []

    def test_logging_call_clean(self):
        src = "try:\n    work()\nexcept OSError:\n    log.warning('x')\n"
        assert codes(src) == []

    def test_counter_update_clean(self):
        src = "try:\n    work()\nexcept OSError:\n    misses += 1\n"
        assert codes(src) == []

    def test_fallback_assignment_clean(self):
        src = "try:\n    v = parse()\nexcept ValueError:\n    v = None\n"
        assert codes(src) == []

    def test_conditional_handling_clean(self):
        # A branch means the handler inspects the situation; RPR007
        # only targets bodies that cannot possibly have acted.
        src = (
            "try:\n"
            "    work()\n"
            "except OSError:\n"
            "    if strict:\n"
            "        raise\n"
        )
        assert codes(src) == []

    def test_noqa_escape_on_except_line(self):
        src = (
            "try:\n"
            "    work()\n"
            "except OSError:  # repro: noqa[RPR007] — expected miss\n"
            "    pass\n"
        )
        assert codes(src) == []


# ----------------------------------------------------------------------
# RPR008 — per-cycle allocations in hot functions
# ----------------------------------------------------------------------
class TestRPR008:
    def test_list_display_flagged(self):
        src = (
            "def step(self):  # repro: hot\n"
            "    out = []\n"
        )
        assert codes(src) == ["RPR008"]

    @pytest.mark.parametrize("expr", ["{}", "{1}", "[x for x in y]",
                                      "{x for x in y}",
                                      "{x: 1 for x in y}",
                                      "(x for x in y)"])
    def test_other_containers_flagged(self, expr):
        src = (
            "def step(self):  # repro: hot\n"
            f"    out = {expr}\n"
        )
        assert codes(src) == ["RPR008"]

    @pytest.mark.parametrize("call", ["list(xs)", "dict(xs)", "set(xs)",
                                      "deque(xs)", "sorted(xs)"])
    def test_constructor_calls_flagged(self, call):
        src = (
            "def step(self):  # repro: hot\n"
            f"    out = {call}\n"
        )
        assert codes(src) == ["RPR008"]

    def test_marker_on_wrapped_signature_flagged(self):
        src = (
            "def _start_execution(self, instr, cycle,\n"
            "                     from_iq):  # repro: hot\n"
            "    bucket = [instr]\n"
        )
        assert codes(src) == ["RPR008"]

    def test_unmarked_function_clean(self):
        src = (
            "def cold(self):\n"
            "    return [x for x in self.rows]\n"
        )
        assert codes(src) == []

    def test_marker_in_body_does_not_mark_function(self):
        src = (
            "def cold(self):\n"
            "    helper()  # repro: hot\n"
            "    return []\n"
        )
        assert codes(src) == []

    def test_tuple_display_clean(self):
        # Tuples are the pipeline's data currency (pipe entries, heap
        # items); only the mutable containers are flagged.
        src = (
            "def step(self):  # repro: hot\n"
            "    self.pipe.append((cycle, instr))\n"
        )
        assert codes(src) == []

    def test_module_level_alloc_clean(self):
        assert codes("TABLE = [0] * 64  # repro: hot\n") == []

    def test_noqa_escape(self):
        src = (
            "def step(self):  # repro: hot\n"
            "    buckets[c] = [p]  # repro: noqa[RPR008] — bucket birth\n"
        )
        assert codes(src) == []

    def test_flag_names_the_function(self):
        src = (
            "def _dispatch(self):  # repro: hot\n"
            "    scratch = {}\n"
        )
        out = lint_source(src, path="repro/core/example.py",
                          declared_counters=DECLARED)
        assert len(out) == 1
        assert "_dispatch()" in out[0].message


# ----------------------------------------------------------------------
# noqa suppression + parse errors
# ----------------------------------------------------------------------
class TestSuppression:
    def test_matching_code_suppresses(self):
        assert codes("import random  # repro: noqa[RPR001]\n") == []

    def test_multi_code_suppresses(self):
        src = "import random  # repro: noqa[RPR002, RPR001]\n"
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        assert codes("import random  # repro: noqa[RPR002]\n") == ["RPR001"]

    def test_bare_noqa_suppresses_all(self):
        assert codes("import random  # repro: noqa\n") == []

    def test_suppression_is_per_line(self):
        src = "import random  # repro: noqa[RPR001]\nimport time\n"
        assert codes(src) == ["RPR001"]

    def test_multi_code_tolerates_extra_whitespace(self):
        src = "import random  # repro: noqa[ RPR002 ,  RPR001 ]\n"
        assert codes(src) == []

    def test_codes_are_case_insensitive(self):
        assert codes("import random  # repro: noqa[rpr001]\n") == []

    def test_noqa_on_continuation_line_does_not_suppress(self):
        # Suppression is matched against the line a violation is
        # *reported* at — the first line of the construct. A noqa
        # trailing the closing line of a wrapped expression is inert.
        src = (
            "t = time.perf_counter(\n"
            ")  # repro: noqa[RPR001]\n"
        )
        assert codes(src) == ["RPR001"]

    def test_noqa_on_reporting_line_of_wrapped_call_suppresses(self):
        src = (
            "t = time.perf_counter(  # repro: noqa[RPR001]\n"
            ")\n"
        )
        assert codes(src) == []

    def test_syntax_error_reported_not_suppressed(self):
        out = lint_source("def broken(:\n  # repro: noqa\n")
        assert [v.code for v in out] == ["RPR000"]

    def test_rpr000_unsuppressible_even_on_its_own_line(self):
        out = lint_source("import  # repro: noqa\n")
        assert [v.code for v in out] == ["RPR000"]


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
class TestCli:
    def test_json_output_and_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        rc = main(["lint", str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["count"] == 1
        assert payload["violations"][0]["code"] == "RPR001"
        assert payload["violations"][0]["line"] == 1
        assert set(payload["rules"]) == set(LINT_RULES)

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(x=None):\n    return x\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "/nonexistent/nowhere"]) == 2
        capsys.readouterr()

    def test_every_emitted_code_is_documented(self):
        out = lint_source(
            "import random\n"
            "def f(x=[]):\n"
            "    stats.bogus += 1\n"
            "    core.threads[0].icount = 1\n"
            "    my_cycles = 0\n"
            "    my_cycles += 1 / 2\n",
            declared_counters=DECLARED,
        )
        assert out
        assert {v.code for v in out} <= set(LINT_RULES)


class TestRealTree:
    def test_shipped_tree_is_clean(self):
        src_root = Path(repro.__file__).parent
        violations = lint_paths([src_root])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_main_on_shipped_tree_exits_zero(self, capsys):
        src_root = Path(repro.__file__).parent
        assert main(["lint", str(src_root)]) == 0
        capsys.readouterr()

    def test_benchmarks_tree_is_clean(self):
        bench_root = Path(__file__).resolve().parent.parent / "benchmarks"
        assert bench_root.is_dir()
        violations = lint_paths([bench_root])
        assert violations == [], "\n".join(v.render() for v in violations)

"""Tests for the parallel grid-execution engine (``repro.exec``).

Covers the determinism guarantee (jobs=1 vs jobs=4 byte-identical over
a >= 12-point grid), every cache path (hit / miss / corrupt entry /
schema mismatch), worker-crash retry and per-job timeout, content-hash
stability, and the slot-trace memoisation in the runner.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.exec.pool as pool_mod
from repro.config.presets import small_machine
from repro.exec import (
    SCHEMA_VERSION,
    ExecutionError,
    ExecutorConfig,
    ResultCache,
    SimJob,
    execute_jobs,
    jobs_for_grid,
)
from repro.exec.__main__ import main as exec_main
from repro.exec.jobs import hash_payload
from repro.experiments.runner import (
    clear_slot_trace_cache,
    default_warmup,
    thread_traces,
)
from repro.experiments.sweep import run_sweep
from repro.workloads.mixes import TWO_THREAD_MIXES

CFG = small_machine()
INSNS = 400


def tiny_job(seed: int = 0, **job_kwargs) -> SimJob:
    return SimJob(
        benchmarks=("parser", "vortex"), config=CFG, max_insns=INSNS,
        seed=seed, **job_kwargs,
    )


# ----------------------------------------------------------------------
# SimJob content hashing
# ----------------------------------------------------------------------
class TestSimJobHash:
    def test_equal_jobs_equal_hash(self):
        assert tiny_job().content_hash() == tiny_job().content_hash()

    def test_hash_is_sha256_hex(self):
        h = tiny_job().content_hash()
        assert len(h) == 64
        int(h, 16)  # parses as hex

    @pytest.mark.parametrize("change", [
        dict(seed=1),
        dict(max_insns=INSNS + 1),
        dict(max_cycles=123),
        dict(warmup=100),
        dict(with_fairness=True),
    ])
    def test_any_field_change_changes_hash(self, change):
        base = tiny_job()
        kwargs = dict(benchmarks=base.benchmarks, config=base.config,
                      max_insns=base.max_insns, seed=base.seed)
        kwargs.update(change)
        assert SimJob(**kwargs).content_hash() != base.content_hash()

    def test_config_change_changes_hash(self):
        a = tiny_job()
        b = SimJob(benchmarks=a.benchmarks,
                   config=CFG.replace(iq_size=8),
                   max_insns=a.max_insns, seed=a.seed)
        assert a.content_hash() != b.content_hash()

    def test_hash_stable_across_field_reordering(self):
        # The canonical encoding sorts keys at every level, so the hash
        # cannot depend on dict insertion (= dataclass declaration) order.
        payload = tiny_job().fingerprint_payload()
        reordered = dict(reversed(list(payload.items())))
        reordered["config"] = dict(
            reversed(list(payload["config"].items()))
        )
        assert hash_payload(reordered) == hash_payload(payload)
        assert hash_payload(payload) == tiny_job().content_hash()

    def test_longest_job_first_cost_ordering(self):
        two = tiny_job()
        four = SimJob(benchmarks=("parser", "vortex", "gcc", "gzip"),
                      config=CFG, max_insns=INSNS, seed=0)
        fair = SimJob(benchmarks=two.benchmarks, config=CFG,
                      max_insns=INSNS, seed=0, with_fairness=True)
        assert four.cost_estimate() > two.cost_estimate()
        assert fair.cost_estimate() > two.cost_estimate()


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def executed_job():
    job = tiny_job()
    return job, job.run()


class TestResultCache:
    def test_miss_on_empty(self, tmp_path, executed_job):
        job, _ = executed_job
        assert ResultCache(tmp_path).get(job) is None

    def test_roundtrip_equality(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        cache.put(job, payload)
        got = cache.get(job)
        assert got is not None
        assert got.result == payload.result
        assert got.fairness is None

    def test_no_temp_files_left(self, tmp_path, executed_job):
        job, payload = executed_job
        ResultCache(tmp_path).put(job, payload)
        assert [p.name for p in tmp_path.iterdir()] == [
            f"{job.content_hash()}.json"
        ]

    def test_corrupt_entry_is_miss(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        path = cache.put(job, payload)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(job) is None

    def test_schema_mismatch_is_miss(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        path = cache.put(job, payload)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(job) is None

    def test_version_mismatch_is_miss(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        path = cache.put(job, payload)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["repro_version"] = "0.0.0-stale"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(job) is None

    def test_key_mismatch_is_miss(self, tmp_path, executed_job):
        # An entry whose recorded key disagrees with the requesting job
        # (hand-edited or hash-collided file) must not be served.
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        path = cache.put(job, payload)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(job) is None

    def test_stats_and_clear(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        assert cache.stats().entries == 0
        cache.put(job, payload)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_cli_stats_and_clear(self, tmp_path, executed_job, capsys):
        job, payload = executed_job
        ResultCache(tmp_path).put(job, payload)
        assert exec_main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert exec_main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert ResultCache(tmp_path).stats().entries == 0

    def test_stats_by_kind_breakdown(self, tmp_path, executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        cache.put(job, payload)
        stats = cache.stats()
        kinds = {k: (n, b) for k, n, b in stats.by_kind}
        assert set(kinds) == {"sim"}
        assert kinds["sim"] == (1, stats.total_bytes)

    def test_run_counters_persisted_and_aggregated(self, tmp_path,
                                                   executed_job):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        cache.put(job, payload)
        cache.record_run("run-a", hits=0, misses=4, total=4)
        cache.record_run("run-b", hits=3, misses=1, total=4)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.runs) == (3, 5, 2)
        # Content-derived run ids: a warm rerun updates its own file
        # rather than double counting.
        cache.record_run("run-b", hits=4, misses=0, total=4)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.runs) == (4, 4, 2)

    def test_journalled_runs_record_counters(self, tmp_path):
        jobs = [SimJob(benchmarks=("parser", "vortex"), config=CFG,
                       max_insns=INSNS, seed=s) for s in (0, 1)]
        ex = ExecutorConfig(cache_dir=tmp_path / "cache",
                            journal_dir=tmp_path / "journal")
        _, cold = execute_jobs(jobs, ex)
        runs = tmp_path / "cache" / "runs"
        rec = json.loads(
            (runs / f"{cold.run_id}.json").read_text(encoding="utf-8")
        )
        assert rec == {"run_id": cold.run_id, "hits": 0, "misses": 2,
                       "total": 2}
        stats = ResultCache(tmp_path / "cache").stats()
        assert (stats.hits, stats.misses, stats.runs) == (0, 2, 1)

    def test_cli_stats_reports_kinds_and_counters(self, tmp_path,
                                                  executed_job, capsys):
        job, payload = executed_job
        cache = ResultCache(tmp_path)
        cache.put(job, payload)
        cache.record_run("run-a", hits=2, misses=1, total=3)
        assert exec_main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kind sim: 1 entry" in out
        assert "hits:    2 (over 1 recorded run)" in out
        assert "misses:  1" in out


# ----------------------------------------------------------------------
# executor: determinism, caching, fault handling
# ----------------------------------------------------------------------
def grid_jobs() -> list[SimJob]:
    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:3], CFG, ("traditional", "2op_block"), (8, 16),
        INSNS, 0,
    )
    return [job for _, job in keyed]


class TestExecuteJobs:
    def test_parallel_grid_byte_identical_to_serial(self):
        """Acceptance: >= 12 grid points, jobs=4 == jobs=1, byte for byte."""
        jobs = grid_jobs()
        assert len(jobs) >= 12
        serial, serial_rep = execute_jobs(jobs, ExecutorConfig(jobs=1))
        parallel, parallel_rep = execute_jobs(jobs, ExecutorConfig(jobs=4))
        assert serial_rep.simulated == len(jobs)
        assert parallel_rep.simulated == len(jobs)
        assert [p.result for p in serial] == [p.result for p in parallel]

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        jobs = grid_jobs()[:4]
        ex = ExecutorConfig(jobs=1, cache_dir=tmp_path)
        cold, cold_rep = execute_jobs(jobs, ex)
        warm, warm_rep = execute_jobs(jobs, ex)
        assert cold_rep.cached == 0 and cold_rep.simulated == len(jobs)
        assert warm_rep.simulated == 0 and warm_rep.cached == len(jobs)
        assert [p.result for p in cold] == [p.result for p in warm]

    def test_progress_counts(self, tmp_path):
        jobs = grid_jobs()[:3]
        ex = ExecutorConfig(jobs=1, cache_dir=tmp_path)
        execute_jobs(jobs[:1], ex)  # pre-warm one entry
        events = []
        _, report = execute_jobs(jobs, ex, progress=events.append)
        assert [e.outcome for e in events] == [
            "cached", "simulated", "simulated"
        ]
        assert events[-1].report.completed == len(jobs)
        assert report.cached == 1 and report.simulated == 2

    def test_in_process_failure_raises_after_retries(self):
        bad = SimJob(benchmarks=("no_such_benchmark",), config=CFG,
                     max_insns=INSNS, seed=0)
        with pytest.raises(ExecutionError) as err:
            execute_jobs([bad], ExecutorConfig(jobs=1, retries=2))
        assert "no_such_benchmark" in str(err.value)
        assert err.value.report.retried == 2
        assert err.value.report.failed == 1

    def test_worker_failure_raises_after_retries(self):
        # The trace profile lookup raises inside the worker process; the
        # error must be serialised back and the job retried (bounded).
        bad = SimJob(benchmarks=("no_such_benchmark",), config=CFG,
                     max_insns=INSNS, seed=0)
        ok = tiny_job()
        with pytest.raises(ExecutionError) as err:
            execute_jobs([bad, ok], ExecutorConfig(jobs=2, retries=1))
        assert len(err.value.failures) == 1
        assert "no_such_benchmark" in err.value.failures[0].message
        assert err.value.report.retried == 1

    def test_worker_crash_is_retried_then_failed(self, monkeypatch):
        # Simulate a hard crash (worker exits without reporting). fork
        # inherits the monkeypatched method, so this dies in the child.
        monkeypatch.setattr(SimJob, "run", lambda self: os._exit(3))
        with pytest.raises(ExecutionError) as err:
            execute_jobs(
                [tiny_job(), tiny_job(seed=1)],
                ExecutorConfig(jobs=2, retries=1),
            )
        assert "crashed" in str(err.value)
        assert err.value.report.retried >= 1

    def test_per_job_timeout(self):
        with pytest.raises(ExecutionError) as err:
            execute_jobs(
                [tiny_job(), tiny_job(seed=1)],
                ExecutorConfig(jobs=2, timeout=0.001, retries=1),
            )
        assert "timed out" in str(err.value)

    def test_fallback_without_fork(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "fork_available", lambda: False)
        jobs = [tiny_job(), tiny_job(seed=1)]
        payloads, report = execute_jobs(jobs, ExecutorConfig(jobs=4))
        assert report.simulated == 2
        assert payloads[0].result == tiny_job().run().result

    def test_executor_config_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ex = ExecutorConfig.from_env()
        assert ex.jobs == 3
        assert str(ex.cache_dir) == str(tmp_path)
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert ExecutorConfig.from_env(default_cache=True).cache_dir is None


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
class TestSweepIntegration:
    def test_run_sweep_parallel_matches_serial(self, tmp_path):
        kwargs = dict(
            mixes=TWO_THREAD_MIXES[:3], base_config=CFG,
            schedulers=("traditional", "2op_block"), iq_sizes=(8, 16),
            max_insns=INSNS, seed=0,
        )
        serial = run_sweep(**kwargs, executor=ExecutorConfig(jobs=1))
        parallel = run_sweep(
            **kwargs,
            executor=ExecutorConfig(jobs=4, cache_dir=tmp_path),
        )
        assert len(serial.results) == 12
        assert serial.results == parallel.results
        # Warm rerun: the whole grid is served from the cache.
        warm = run_sweep(
            **kwargs, executor=ExecutorConfig(jobs=4, cache_dir=tmp_path)
        )
        assert warm.exec_report is not None
        assert warm.exec_report.simulated == 0
        assert warm.exec_report.cached == 12
        assert warm.results == serial.results

    def test_run_sweep_fairness_through_cache(self, tmp_path):
        ex = ExecutorConfig(jobs=1, cache_dir=tmp_path)
        kwargs = dict(
            mixes=TWO_THREAD_MIXES[:1], base_config=CFG,
            schedulers=("traditional",), iq_sizes=(8,),
            max_insns=INSNS, seed=0, with_fairness=True,
        )
        cold = run_sweep(**kwargs, executor=ex)
        warm = run_sweep(**kwargs, executor=ex)
        assert warm.exec_report.simulated == 0
        assert warm.fairness == cold.fairness
        assert warm.results == cold.results


# ----------------------------------------------------------------------
# slot-trace memoisation (runner)
# ----------------------------------------------------------------------
class TestSlotTraceMemo:
    def test_traces_are_memoised_across_calls(self):
        clear_slot_trace_cache()
        warmup = default_warmup(INSNS)
        first = thread_traces(["parser", "vortex"], INSNS, 0, warmup)
        second = thread_traces(["parser", "vortex"], INSNS, 0, warmup)
        # Identity, not just equality: nothing was regenerated.
        assert all(a is b for a, b in zip(first, second))

    def test_distinct_slots_get_distinct_traces(self):
        clear_slot_trace_cache()
        warmup = default_warmup(INSNS)
        a, b = thread_traces(["parser", "parser"], INSNS, 0, warmup)
        assert a is not b
        assert a.seed != b.seed

    def test_clear_resets_memo(self):
        import repro.experiments.runner as runner_mod

        warmup = default_warmup(INSNS)
        thread_traces(["parser"], INSNS, 0, warmup)
        assert runner_mod._SLOT_TRACE_CACHE
        clear_slot_trace_cache()
        assert not runner_mod._SLOT_TRACE_CACHE

"""Benchmark profile registry tests."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.profiles import (
    ALL_BENCHMARKS,
    PROFILES,
    BenchmarkProfile,
    benchmarks_by_class,
    get_profile,
    _int_mix,
)


class TestRegistry:
    def test_all_26_spec2000_programs(self):
        assert len(ALL_BENCHMARKS) == 26

    def test_int_fp_split(self):
        ints = [p for p in PROFILES.values() if p.suite == "int"]
        fps = [p for p in PROFILES.values() if p.suite == "fp"]
        assert len(ints) == 12
        assert len(fps) == 14

    def test_every_class_represented(self):
        for cls in ("low", "med", "high"):
            assert benchmarks_by_class(cls)

    def test_benchmarks_by_class_partition(self):
        union = set()
        for cls in ("low", "med", "high"):
            names = benchmarks_by_class(cls)
            assert not union & set(names)
            union.update(names)
        assert union == set(ALL_BENCHMARKS)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            benchmarks_by_class("ultra")

    def test_get_profile_known(self):
        assert get_profile("gzip").name == "gzip"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")


class TestProfileContents:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_mix_sums_to_one(self, name):
        assert abs(sum(get_profile(name).mix.values()) - 1.0) < 1e-9

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_int_programs_have_no_fp_ops(self, name):
        p = get_profile(name)
        if p.suite == "int":
            fp_ops = {OpClass.FPADD, OpClass.FPMUL, OpClass.FPDIV,
                      OpClass.FPSQRT}
            assert not fp_ops & set(p.mix)
            assert p.fp_load_frac == 0.0

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_memory_bound_means_large_footprint(self, name):
        p = get_profile(name)
        if p.ilp_class == "low":
            assert p.footprint_kb * 1024 > 8 * 1024 * 1024, (
                "low-ILP programs must be memory bound (footprint >> L2)"
            )
        if p.ilp_class == "high":
            assert p.footprint_kb <= 2048, (
                "high-ILP programs must be execution bound (cache resident)"
            )

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_strand_count_follows_class(self, name):
        p = get_profile(name)
        if p.ilp_class == "low":
            assert p.strands <= 3
        if p.ilp_class == "high":
            assert p.strands >= 5


class TestValidation:
    def _base(self, **kw):
        args = dict(
            name="x", suite="int", ilp_class="med",
            mix=_int_mix(0.2, 0.1, 0.1), frac_two_src=0.5, dep_mean=3.0,
            footprint_kb=64, seq_frac=0.5, pointer_chase=0.1,
            branch_predictability=0.9,
        )
        args.update(kw)
        return BenchmarkProfile(**args)

    def test_valid_profile(self):
        assert self._base().name == "x"

    def test_bad_suite(self):
        with pytest.raises(ValueError, match="suite"):
            self._base(suite="vector")

    def test_bad_class(self):
        with pytest.raises(ValueError, match="ilp_class"):
            self._base(ilp_class="huge")

    def test_mix_must_sum_to_one(self):
        mix = _int_mix(0.2, 0.1, 0.1)
        mix[OpClass.IALU] += 0.1
        with pytest.raises(ValueError, match="sums to"):
            self._base(mix=mix)

    def test_fraction_ranges(self):
        with pytest.raises(ValueError):
            self._base(frac_two_src=1.5)
        with pytest.raises(ValueError):
            self._base(seq_frac=-0.1)
        with pytest.raises(ValueError):
            self._base(branch_predictability=0.2)
        with pytest.raises(ValueError):
            self._base(strands=0)

    def test_fingerprint_distinguishes_variants(self):
        a = self._base()
        b = self._base(dep_mean=3.5)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == self._base().fingerprint()

    def test_fingerprint_hashable(self):
        hash(self._base().fingerprint())

"""Utility tests: deterministic RNG derivation and validators."""

import pytest

from repro.util.rng import derive_seed, make_rng
from repro.util.validate import check_positive, check_power_of_two, check_range


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_change_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_64_bit_range(self):
        for i in range(20):
            s = derive_seed(i, "x")
            assert 0 <= s < 2 ** 64

    def test_stable_value(self):
        # Guards against accidental algorithm changes that would silently
        # regenerate every trace differently.
        assert derive_seed(0, "trace", "gzip") == derive_seed(0, "trace", "gzip")


class TestMakeRng:
    def test_streams_reproducible(self):
        a = make_rng(7, "t").integers(0, 1000, 10)
        b = make_rng(7, "t").integers(0, 1000, 10)
        assert (a == b).all()

    def test_streams_independent(self):
        a = make_rng(7, "t").integers(0, 1000, 10)
        b = make_rng(7, "u").integers(0, 1000, 10)
        assert (a != b).any()


class TestValidators:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_power_of_two(self):
        check_power_of_two("x", 8)
        for bad in (0, 3, -4, 12):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)

    def test_check_range(self):
        check_range("x", 0.5, 0.0, 1.0)
        check_range("x", 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_range("x", 1.5, 0.0, 1.0)

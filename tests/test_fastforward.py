"""Fast-forward equivalence: the golden invariant of the skip engine.

Running :class:`SMTProcessor` with idle-cycle fast-forward on or off
must produce **byte-identical** :class:`PipelineStats` — same cycles,
same occupancy integrals, same stall attribution, same watchdog
behaviour. These tests enforce that across the tier-1 configurations,
across randomly drawn (mix, IQ size, scheduler, seed) points, and on
the sharpest edge the engine has: a skip that lands exactly on the
watchdog expiry cycle.
"""

from dataclasses import asdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.presets import paper_machine, small_machine, tiny_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.fastforward import FastForward
from repro.pipeline.smt_core import SMTProcessor

from tests.trace_builder import TraceBuilder

SCHEDULERS = ("traditional", "2op_block", "2op_ooo", "2op_ooo_filtered")


def _stats_pair(cfg, mix, insns, warmup, max_cycles=200_000):
    """Run the same configuration with fast-forward on and off."""
    out = []
    for ff in (True, False):
        traces = thread_traces(list(mix), insns, seed=0, warmup=warmup)
        core = SMTProcessor(cfg, traces, warmup=warmup, fast_forward=ff)
        out.append(core.run(insns, max_cycles))
    return out


def _assert_identical(a, b):
    """Equality plus the byte-level forms tests serialise stats through."""
    assert a == b
    assert asdict(a) == asdict(b)
    assert repr(a) == repr(b)


class TestTier1Equivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_paper_machine_identical(self, scheduler):
        cfg = paper_machine(scheduler=scheduler)
        a, b = _stats_pair(cfg, ["parser", "vortex"], 1500, 500)
        _assert_identical(a, b)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_small_machine_memory_bound_identical(self, scheduler):
        # gzip+mcf is the miss-heavy pair: long L2 episodes are exactly
        # the dead spans the engine exists to skip.
        cfg = small_machine(scheduler=scheduler)
        a, b = _stats_pair(cfg, ["gzip", "mcf"], 1500, 500)
        _assert_identical(a, b)

    def test_single_thread_identical(self):
        cfg = paper_machine()
        a, b = _stats_pair(cfg, ["ammp"], 1500, 500)
        _assert_identical(a, b)

    def test_sanitized_run_identical(self):
        # Sanitizer ticks are a skip cap: every check must still observe
        # its exact cycle, so sanitizer_checks must match too.
        cfg = paper_machine(scheduler="2op_ooo", sanitize=True,
                            sanitize_interval=16)
        a, b = _stats_pair(cfg, ["parser", "vortex"], 1500, 500)
        _assert_identical(a, b)
        assert a.sanitizer_checks > 0

    def test_engine_actually_skips(self):
        # Guard against the invariant passing vacuously: on the
        # miss-heavy pair the engine must be jumping dead spans.
        cfg = small_machine(scheduler="2op_ooo")
        traces = thread_traces(["gzip", "mcf"], 1500, seed=0, warmup=500)
        core = SMTProcessor(cfg, traces, warmup=500)
        core.run(1500)
        assert core.ff is not None
        assert core.ff.skips > 0
        assert core.ff.cycles_skipped > 0

    def test_fast_forward_off_disables_engine(self):
        traces = thread_traces(["parser"], 400, seed=0, warmup=100)
        core = SMTProcessor(paper_machine(), traces, warmup=100,
                            fast_forward=False)
        assert core.ff is None


class _SpyFF(FastForward):
    """Records where each skip lands and the watchdog budget there."""

    __slots__ = ("landings",)

    def __init__(self, core, wedge_limit, hdi_mask):
        super().__init__(core, wedge_limit, hdi_mask)
        self.landings = []

    def try_skip(self, max_cycles):
        span = super().try_skip(max_cycles)
        if span:
            watchdog = self.core.watchdog
            self.landings.append(
                (self.core.cycle,
                 None if watchdog is None else watchdog.remaining)
            )
        return span


class TestWatchdogExpiryEdge:
    """A skip may approach the watchdog expiry but never cross it: the
    expiry tick flushes the pipeline, which bulk accounting cannot
    replicate, so that cycle must be stepped for real."""

    def _wedging_trace(self):
        # A cold load (guaranteed miss to an untouched region) followed
        # by a window-filling dependent chain: dispatch goes quiet while
        # the ROB holds entries, so the watchdog counts down.
        tb = TraceBuilder()
        tb.load(dest=1, addr=1 << 20)
        for _ in range(30):
            tb.ialu(dest=2, src1=1)
        return tb.build()

    def _cfg(self):
        return tiny_machine(scheduler="2op_ooo", deadlock_mode="watchdog",
                            watchdog_cycles=6)

    def test_skip_lands_exactly_on_expiry_cycle(self):
        cfg = self._cfg()
        core = SMTProcessor(cfg, [self._wedging_trace()])
        core.ff = _SpyFF(core, 250_000, 15)
        stats = core.run(1000)
        assert stats.watchdog_flushes > 0
        assert core.ff.skips > 0
        # The binding cap is the expiry: the jump stops with exactly one
        # watchdog cycle left, so the very next (real) step is the
        # expiring tick that flushes.
        assert any(rem == 1 for _, rem in core.ff.landings)

    def test_watchdog_run_identical_with_and_without_ff(self):
        cfg = self._cfg()
        a = SMTProcessor(cfg, [self._wedging_trace()]).run(1000)
        b = SMTProcessor(cfg, [self._wedging_trace()],
                         fast_forward=False).run(1000)
        _assert_identical(a, b)
        assert a.watchdog_flushes > 0


class TestPropertyEquivalence:
    @given(
        mix=st.lists(
            st.sampled_from(["gzip", "mcf", "parser", "vortex", "ammp",
                             "art"]),
            min_size=1, max_size=2,
        ),
        iq_size=st.sampled_from([4, 8, 16]),
        scheduler=st.sampled_from(SCHEDULERS),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_config_identical(self, mix, iq_size, scheduler, seed):
        """Any (mix, IQ size, scheduler, seed) point produces identical
        stats with the skip engine on and off."""
        cfg = small_machine(iq_size=iq_size, scheduler=scheduler)
        out = []
        for ff in (True, False):
            traces = thread_traces(mix, 600, seed=seed, warmup=200)
            core = SMTProcessor(cfg, traces, warmup=200, fast_forward=ff)
            out.append(core.run(600, 100_000))
        _assert_identical(*out)

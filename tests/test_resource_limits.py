"""Structural-resource corner cases: every back-pressure path of the
pipeline exercised in isolation."""

import pytest

from repro.config.presets import small_machine, tiny_machine
from repro.isa.opcodes import OpClass
from repro.pipeline.smt_core import SMTProcessor
from tests.trace_builder import TraceBuilder


def run(trace, cfg, max_insns=10_000):
    core = SMTProcessor(cfg, [trace] if not isinstance(trace, list) else trace)
    stats = core.run(max_insns)
    return core, stats


class TestIssueWidth:
    def test_issue_width_caps_per_cycle_issues(self):
        """More ready instructions than issue width: completion must be
        spread over ceil(n/width) cycles."""
        cfg = small_machine()  # 4-wide
        trace = TraceBuilder().nops(64).build()
        core = SMTProcessor(cfg, [trace])
        issues_per_cycle = {}

        orig = core._start_execution

        def counting(instr, cycle, from_iq):
            issues_per_cycle[cycle] = issues_per_cycle.get(cycle, 0) + 1
            orig(instr, cycle, from_iq)

        core._start_execution = counting
        core.run(10_000)
        assert max(issues_per_cycle.values()) <= cfg.issue_width


class TestCommitWidth:
    def test_commit_width_caps_retirement(self):
        cfg = small_machine()
        trace = TraceBuilder().nops(64).build()
        core = SMTProcessor(cfg, [trace])
        prev = 0
        while not core.threads[0].drained:
            core.step()
            now = core.stats.committed_total
            assert now - prev <= cfg.commit_width
            prev = now


class TestRobFull:
    def test_rob_full_stalls_rename_not_correctness(self):
        """A memory-missing head instruction lets the ROB fill behind it;
        everything must still retire in order afterwards."""
        cfg = tiny_machine()  # 8-entry ROB
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x100000)  # miss at the head
        tb.nops(30)                     # far more than the ROB holds
        core, stats = run(tb.build(), cfg)
        assert stats.committed_total == 31
        # The window never exceeded its capacity (validate() checks this
        # structurally, but assert the high-water mark explicitly).
        assert len(core.threads[0].rob) == 0


class TestLsqFull:
    def test_lsq_full_stalls_memory_ops(self):
        cfg = tiny_machine()  # 4-entry LSQ
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x100000)  # long miss holds LSQ entries
        for i in range(12):
            tb.load(dest=2 + (i % 3), addr=0x40 + 8 * i)
        core, stats = run(tb.build(), cfg)
        assert stats.committed_total == 13

    def test_non_memory_ops_unaffected_by_lsq(self):
        cfg = tiny_machine()
        trace = TraceBuilder().nops(40).build()
        _, stats = run(trace, cfg)
        assert stats.committed_total == 40


class TestPhysRegExhaustion:
    def test_rename_stalls_until_commit_frees_registers(self):
        """tiny_machine has 48 int physical registers, 31 of which back
        the architectural state: only 17 in-flight destinations fit. A
        long stream of dest-writing instructions behind a miss must
        stall rename and then recover."""
        cfg = tiny_machine()
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x100000)
        for i in range(40):
            tb.ialu(dest=2 + (i % 20))
        core, stats = run(tb.build(), cfg)
        assert stats.committed_total == 41
        # Free list must be whole again after the drain.
        assert len(core.renamer.int_free) == (
            cfg.int_phys_regs - 31  # architectural mappings still held
        )


class TestFuContention:
    def test_divider_contention_defers_but_preserves_oldest_first(self):
        """Five divides on four divider units: the fifth must wait the
        full occupancy interval, younger adds may pass it."""
        cfg = small_machine()
        tb = TraceBuilder()
        for _ in range(5):
            tb.add(OpClass.IDIV, dest=1)
        tb.ialu(dest=2)  # independent add can issue around the divides
        core, stats = run(tb.build(), cfg)
        assert stats.committed_total == 6

    def test_heavy_div_stream_throughput_is_interval_bound(self):
        """IDIV occupies its unit for 19 cycles; 4 units bound steady
        throughput to ~4/19 per cycle."""
        cfg = small_machine()
        tb = TraceBuilder()
        for _ in range(40):
            tb.add(OpClass.IDIV, dest=1)
        _, stats = run(tb.build(), cfg)
        assert stats.throughput_ipc < 0.35


class TestDispatchBufferDepth:
    def test_shallow_buffer_limits_ooo_lookahead(self):
        """With a 2-deep dispatch buffer the OOO scheduler can only jump
        one instruction past an NDI; with a deep buffer it overlaps the
        next miss. Deeper lookahead must not be slower."""
        def trace():
            tb = TraceBuilder()
            for ep in range(8):
                base = 0x100000 * (ep + 1)
                tb.load(dest=1, addr=base)
                tb.load(dest=2, addr=base + 0x8000)
                tb.ialu(dest=3, src1=1, src2=2)
                for i in range(10):
                    tb.ialu(dest=4 + (i % 4))
            return tb.build()

        shallow = small_machine(scheduler="2op_ooo", dispatch_buffer_depth=2)
        deep = small_machine(scheduler="2op_ooo", dispatch_buffer_depth=32)
        _, s_shallow = run(trace(), shallow)
        _, s_deep = run(trace(), deep)
        assert s_deep.cycles <= s_shallow.cycles


class TestTraceExhaustion:
    def test_thread_drains_when_trace_ends_midflight(self):
        t0 = TraceBuilder().nops(10).build()
        t1 = TraceBuilder().nops(500).build()
        cfg = small_machine()
        core = SMTProcessor(cfg, [t0, t1])
        stats = core.run(10_000)
        assert stats.committed[0] == 10
        assert stats.committed[1] == 500
        assert core.threads[0].drained and core.threads[1].drained

"""Hand-built traces for precise pipeline behaviour tests."""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.trace.generator import Trace


class TraceBuilder:
    """Builds a :class:`Trace` instruction by instruction.

    PCs auto-increment by 4 unless given explicitly, so icache behaviour
    is sequential and branch-free by default.
    """

    def __init__(self, name: str = "hand") -> None:
        self.name = name
        self.rows: list[dict] = []

    def add(self, op: OpClass, dest: int = NO_REG, src1: int = NO_REG,
            src2: int = NO_REG, addr: int = 0, taken: bool = False,
            target: int = 0, pc: int | None = None) -> "TraceBuilder":
        self.rows.append(dict(
            op=int(op), dest=dest, src1=src1, src2=src2, addr=addr,
            taken=taken, target=target,
            pc=pc if pc is not None else len(self.rows) * 4,
        ))
        return self

    def ialu(self, dest=NO_REG, src1=NO_REG, src2=NO_REG, pc=None):
        return self.add(OpClass.IALU, dest=dest, src1=src1, src2=src2, pc=pc)

    def load(self, dest, src1=NO_REG, addr=0):
        return self.add(OpClass.LOAD, dest=dest, src1=src1, addr=addr)

    def store(self, src1, src2=NO_REG, addr=0):
        return self.add(OpClass.STORE, src1=src1, src2=src2, addr=addr)

    def branch(self, src1=NO_REG, taken=False, target=0, pc=None):
        return self.add(OpClass.BRANCH, src1=src1, taken=taken,
                        target=target, pc=pc)

    def nops(self, count: int) -> "TraceBuilder":
        for _ in range(count):
            self.ialu()
        return self

    def build(self, warm_addrs: list[int] | None = None,
              warm_code: bool = True) -> Trace:
        pcs = [r["pc"] for r in self.rows]
        warm_pcs: list[int] = []
        if warm_code and pcs:
            warm_pcs = list(range(0, max(pcs) + 64, 64))
        return Trace(
            name=self.name,
            seed=0,
            op=[r["op"] for r in self.rows],
            dest=[r["dest"] for r in self.rows],
            src1=[r["src1"] for r in self.rows],
            src2=[r["src2"] for r in self.rows],
            pc=pcs,
            addr=[r["addr"] for r in self.rows],
            taken=[r["taken"] for r in self.rows],
            target=[r["target"] for r in self.rows],
            warm_addrs=warm_addrs or [],
            warm_pcs=warm_pcs,
        )

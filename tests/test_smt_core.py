"""Cycle-accurate behaviour tests of the SMT core on hand-built traces."""

import pytest

from repro.config.presets import small_machine, tiny_machine
from repro.isa.opcodes import OpClass
from repro.pipeline.smt_core import SMTProcessor
from tests.trace_builder import TraceBuilder


class RecordingCore(SMTProcessor):
    """Keeps every dynamic instruction for post-run inspection."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.instrs: list = []

    def new_instr(self, ts, idx, cycle):
        di = super().new_instr(ts, idx, cycle)
        self.instrs.append(di)
        return di


def run_core(traces, cfg=None, max_insns=10_000, cls=RecordingCore):
    cfg = cfg or small_machine()
    core = cls(cfg, traces if isinstance(traces, list) else [traces])
    stats = core.run(max_insns)
    return core, stats


class TestBasicExecution:
    def test_empty_chain_completes(self):
        trace = TraceBuilder().nops(20).build()
        core, stats = run_core(trace)
        assert stats.committed_total == 20
        assert core.threads[0].drained

    def test_stop_after_budget(self):
        trace = TraceBuilder().nops(50).build()
        _, stats = run_core(trace, max_insns=10)
        assert stats.committed[0] >= 10

    def test_independent_instructions_reach_machine_width(self):
        trace = TraceBuilder().nops(400).build()
        _, stats = run_core(trace)
        # 4-wide small machine on dependence-free code: close to width.
        assert stats.throughput_ipc > 3.0

    def test_serial_chain_runs_at_one_ipc(self):
        tb = TraceBuilder()
        for i in range(200):
            tb.ialu(dest=1 + (i % 8), src1=1 + ((i - 1) % 8) if i else -1)
        core, stats = run_core(tb.build())
        # Fully serial single-cycle chain: one instruction per cycle plus
        # pipeline fill.
        assert 0.8 < stats.throughput_ipc <= 1.05

    def test_rejects_empty_thread_list(self):
        with pytest.raises(ValueError):
            SMTProcessor(small_machine(), [])

    def test_rejects_bad_warmup(self):
        trace = TraceBuilder().nops(10).build()
        with pytest.raises(ValueError):
            SMTProcessor(small_machine(), [trace], warmup=10)

    def test_rejects_bad_budget(self):
        trace = TraceBuilder().nops(10).build()
        core = SMTProcessor(small_machine(), [trace])
        with pytest.raises(ValueError):
            core.run(0)


class TestDependenceTiming:
    def test_back_to_back_dependent_issue(self):
        """A single-cycle producer wakes its consumer for the next cycle."""
        tb = TraceBuilder()
        tb.nops(1)
        tb.ialu(dest=1)           # producer
        tb.ialu(dest=2, src1=1)   # consumer
        core, _ = run_core(tb.build())
        producer = core.instrs[1]
        consumer = core.instrs[2]
        assert consumer.issue_cycle == producer.issue_cycle + 1

    def test_multicycle_producer_delays_consumer(self):
        tb = TraceBuilder()
        tb.add(OpClass.IMUL, dest=1)      # latency 3
        tb.ialu(dest=2, src1=1)
        core, _ = run_core(tb.build())
        mul, consumer = core.instrs[0], core.instrs[1]
        assert consumer.issue_cycle == mul.issue_cycle + 3

    def test_load_miss_latency_reaches_consumer(self):
        cfg = small_machine()
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x4000)      # cold -> memory latency
        tb.ialu(dest=2, src1=1)
        core, _ = run_core(tb.build(), cfg)
        load, consumer = core.instrs[0], core.instrs[1]
        expected = load.issue_cycle + 2 + cfg.mem.memory_latency
        assert consumer.issue_cycle == expected

    def test_warm_load_is_fast(self):
        cfg = small_machine()
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x40)
        tb.ialu(dest=2, src1=1)
        core, _ = run_core(tb.build(warm_addrs=[0x40]), cfg)
        load, consumer = core.instrs[0], core.instrs[1]
        assert consumer.issue_cycle == load.issue_cycle + 2

    def test_store_forwarding_avoids_cache_miss(self):
        cfg = small_machine()
        tb = TraceBuilder()
        tb.ialu(dest=1)
        tb.store(src1=1, addr=0x4000)
        tb.load(dest=2, addr=0x4000)     # forwarded from the store
        tb.ialu(dest=3, src1=2)
        core, stats = run_core(tb.build(), cfg)
        load = core.instrs[2]
        assert load.forwarded
        assert stats.store_forwards == 1
        consumer = core.instrs[3]
        assert consumer.issue_cycle == load.issue_cycle + 2


class TestFrontEnd:
    def test_frontend_depth_delay(self):
        """First instruction cannot issue before the front end drains."""
        cfg = small_machine()
        trace = TraceBuilder().nops(5).build()
        core, _ = run_core(trace, cfg)
        first = core.instrs[0]
        assert first.fetch_cycle == 0
        # fetch at 0, rename at depth-1, dispatch >= depth, issue > dispatch
        assert first.issue_cycle >= cfg.frontend_depth

    def test_mispredicted_branch_stalls_fetch_until_resolution(self):
        tb = TraceBuilder()
        tb.branch(taken=True, target=8, pc=0)   # cold predictor+BTB
        tb.ialu(dest=1, pc=8)
        core, _ = run_core(tb.build())
        branch, after = core.instrs[0], core.instrs[1]
        assert branch.mispredicted
        # The next instruction is fetched only after the branch resolves.
        assert after.fetch_cycle > branch.complete_cycle

    def test_correctly_predicted_not_taken_has_no_bubble(self):
        tb = TraceBuilder()
        # Train the same (not-taken) branch repeatedly: after warmup the
        # fetch stream should be contiguous.
        for _ in range(60):
            tb.branch(taken=False, pc=0x100)
            tb.ialu(dest=1, pc=0x104)
        core, stats = run_core(tb.build())
        later = [i for i in core.instrs if i.seq > 100 and i.is_branch]
        assert any(not b.mispredicted for b in later)
        assert stats.branch_mispredict_rate < 0.5

    def test_icount_counts_are_consistent(self):
        trace = TraceBuilder().nops(50).build()
        core, _ = run_core(trace)
        core.validate()


class TestMultiThread:
    def test_two_threads_share_the_machine(self):
        t0 = TraceBuilder().nops(300).build()
        t1 = TraceBuilder().nops(300).build()
        core, stats = run_core([t0, t1])
        assert stats.committed[0] > 0 and stats.committed[1] > 0

    def test_stalled_thread_does_not_block_the_other(self):
        """Thread 0 is a serial chain of memory misses; thread 1 is
        dependence-free. Thread 1 must make far more progress."""
        slow = TraceBuilder()
        for i in range(100):
            slow.load(dest=1, src1=1 if i else -1, addr=0x10000 * (i + 1))
        fast = TraceBuilder().nops(2000).build()
        core, stats = run_core([slow.build(), fast])
        assert stats.committed[1] > stats.committed[0] * 5

    def test_commit_is_per_thread_in_order(self):
        t0 = TraceBuilder().nops(100).build()
        t1 = TraceBuilder().nops(100).build()
        core, _ = run_core([t0, t1])
        # rename order equals trace order; spot-check commit monotonicity
        # through tseq of retired instructions per thread.
        seen = {0: -1, 1: -1}
        for di in sorted(core.instrs, key=lambda d: d.complete_cycle):
            pass  # completion may be out of order; commit order is
        # asserted structurally by ReorderBuffer, checked via validate().
        core.validate()

    def test_determinism(self):
        def one_run():
            t0 = TraceBuilder().nops(200).build()
            t1 = TraceBuilder().nops(200).build()
            _, stats = run_core([t0, t1])
            return stats.cycles, tuple(stats.committed)
        assert one_run() == one_run()


class TestSchedulerBehaviour:
    def _blocking_trace(self):
        """A 2-non-ready instruction behind two miss loads, with
        independent work piled up behind it."""
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x10000)
        tb.load(dest=2, addr=0x20000)
        tb.ialu(dest=3, src1=1, src2=2)  # NDI until a load returns
        for i in range(40):
            tb.ialu(dest=4 + (i % 4))     # independent HDIs
        return tb.build()

    def test_2op_block_blocks_thread(self):
        cfg = small_machine(scheduler="2op_block")
        core, stats = run_core(self._blocking_trace(), cfg)
        assert stats.blocked_2op_cycles[0] > 0
        assert stats.all_blocked_2op_cycles > 0

    def test_traditional_never_2op_blocks(self):
        cfg = small_machine(scheduler="traditional")
        _, stats = run_core(self._blocking_trace(), cfg)
        assert stats.all_blocked_2op_cycles == 0

    def test_ooo_dispatches_hdis_past_the_ndi(self):
        cfg = small_machine(scheduler="2op_ooo")
        core, stats = run_core(self._blocking_trace(), cfg)
        assert stats.ooo_dispatched > 0

    def test_ooo_faster_than_2op_block_on_recurring_ndis(self):
        """2OP_BLOCK stalls at every NDI, serialising the cache misses;
        out-of-order dispatch lets the next episode's miss loads issue
        under the shadow of the current one (memory-level parallelism),
        so the same trace finishes in far fewer cycles."""
        tb = TraceBuilder()
        for ep in range(20):
            base = 0x100000 * (ep + 1)
            tb.load(dest=1, addr=base)            # cold miss
            tb.load(dest=2, addr=base + 0x8000)   # cold miss
            tb.ialu(dest=3, src1=1, src2=2)       # NDI for ~the full miss
            for i in range(12):
                tb.ialu(dest=4 + (i % 4))         # independent HDIs
        trace = tb.build()
        _, block = run_core(trace, small_machine(scheduler="2op_block"))
        _, ooo = run_core(trace, small_machine(scheduler="2op_ooo"))
        assert block.committed_total == ooo.committed_total == len(trace.op)
        assert ooo.cycles < 0.8 * block.cycles

    def test_all_schedulers_commit_everything(self):
        trace = self._blocking_trace()
        for sched in ("traditional", "2op_block", "2op_ooo",
                      "2op_ooo_filtered"):
            _, stats = run_core(trace, small_machine(scheduler=sched))
            assert stats.committed_total == len(trace.op)

    def test_reduced_iq_never_holds_two_nonready(self):
        """The IssueQueue asserts the comparator budget internally; a
        full 2op run exercising it must not raise."""
        run_core(self._blocking_trace(), small_machine(scheduler="2op_block"))


class TestDeadlockMachinery:
    def test_dab_takes_rob_oldest_when_iq_full(self):
        """Construct the §4 deadlock scenario directly: the ROB-oldest
        instruction is denied an IQ entry that is held by a younger
        dependent dispatched out of order."""
        from repro.pipeline.dynamic import DynInstr

        cfg = tiny_machine(scheduler="2op_ooo", iq_size=1,
                           deadlock_buffer_size=1)
        trace = TraceBuilder().nops(4).build()
        core = SMTProcessor(cfg, [trace])
        ts = core.threads[0]

        def di(seq, src1_p=-1):
            d = DynInstr(tid=0, seq=seq, tseq=seq, op=int(OpClass.IALU),
                         pc=0, addr=0, taken=False, target=0, dest_l=-1,
                         src1_l=-1, src2_l=-1, fetch_cycle=0)
            d.src1_p = src1_p
            return d

        head = di(0)                 # ready, undispatched, ROB oldest
        waiter = di(1, src1_p=5)     # younger, waits on a pending reg
        core.renamer.ready[5] = 0
        ts.rob.allocate(head)
        ts.rob.allocate(waiter)
        core.iq.insert(waiter, 0)    # occupies the single IQ entry
        ts.dispatch_buffer = [head]
        ts.icount = 2

        core._dispatch(cycle=0)
        assert core.dab is not None
        assert head.in_dab
        assert core.stats.dab_inserts == 1

        # DAB instructions take precedence at select time.
        core._issue(cycle=1)
        assert head.issued
        assert core.stats.dab_issues == 1

    def test_watchdog_flush_recovers_progress(self):
        """All-NDI pileup with a tiny watchdog: the pipeline flushes and
        still commits the full trace correctly."""
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x10000)
        tb.load(dest=2, addr=0x20000)
        for i in range(10):
            tb.ialu(dest=3 + (i % 4), src1=1, src2=2)  # all NDIs
        cfg = small_machine(scheduler="2op_ooo", deadlock_mode="watchdog",
                            watchdog_cycles=20)
        core, stats = run_core(tb.build(), cfg)
        assert stats.watchdog_flushes >= 1
        assert stats.committed_total == 12

    def test_buffer_mode_runs_without_flushes(self):
        trace = TraceBuilder().nops(100).build()
        cfg = small_machine(scheduler="2op_ooo", deadlock_mode="buffer")
        _, stats = run_core(trace, cfg)
        assert stats.watchdog_flushes == 0


class TestInvariants:
    @pytest.mark.parametrize("sched", ["traditional", "2op_block",
                                       "2op_ooo"])
    def test_validate_holds_throughout_run(self, sched):
        cfg = small_machine(scheduler=sched)
        t0 = self._mixed_trace()
        t1 = self._mixed_trace()
        core = SMTProcessor(cfg, [t0, t1])
        for _ in range(400):
            core.step()
            if core.cycle % 7 == 0:
                core.validate()

    @staticmethod
    def _mixed_trace():
        tb = TraceBuilder()
        for i in range(150):
            kind = i % 5
            if kind == 0:
                tb.load(dest=1 + (i % 4), addr=(i * 64) % 0x8000)
            elif kind == 1:
                tb.ialu(dest=5 + (i % 4), src1=1 + (i % 4))
            elif kind == 2:
                tb.store(src1=5 + (i % 4), addr=(i * 32) % 0x4000)
            elif kind == 3:
                tb.ialu(dest=9 + (i % 4), src1=5 + (i % 4), src2=1 + (i % 4))
            else:
                tb.ialu(dest=13 + (i % 4))
        return tb.build()

    def test_conservation_of_instructions(self):
        trace = self._mixed_trace()
        core, stats = run_core(trace)
        assert stats.fetched >= stats.renamed >= stats.committed_total
        assert stats.issued >= stats.committed_total
        assert stats.committed_total == len(trace.op)

"""Synthetic trace generator tests."""

import pytest

from repro.isa.opcodes import OpClass
from repro.isa.registers import FP_BASE, NO_REG, is_zero_reg
from repro.trace.generator import (
    Trace,
    clear_trace_cache,
    generate_trace,
)
from repro.trace.profiles import BenchmarkProfile, get_profile, _int_mix


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def gen(name="gzip", n=5000, seed=1):
    return generate_trace(name, n, seed)


class TestDeterminism:
    def test_same_key_same_trace(self):
        a = gen()
        clear_trace_cache()
        b = gen()
        assert a.op == b.op
        assert a.src1 == b.src1
        assert a.addr == b.addr
        assert a.taken == b.taken

    def test_cache_returns_same_object(self):
        assert gen() is gen()

    def test_seed_changes_trace(self):
        assert gen(seed=1).op != gen(seed=2).op

    def test_benchmark_changes_trace(self):
        assert gen("gzip").op != gen("parser").op

    def test_profile_variant_not_aliased(self):
        base = get_profile("gzip")
        variant = BenchmarkProfile(
            **{f: getattr(base, f) for f in (
                "name", "suite", "ilp_class", "mix", "frac_two_src",
                "footprint_kb", "seq_frac", "pointer_chase",
                "branch_predictability", "code_kb", "fp_load_frac",
                "hot_frac", "far_src_frac", "strands",
            )},
            dep_mean=base.dep_mean + 5,
        )
        a = generate_trace(base, 3000, 0)
        b = generate_trace(variant, 3000, 0)
        assert a is not b

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            generate_trace("gzip", 0)


class TestStatisticalShape:
    def test_length(self):
        assert len(gen(n=3000)) == 3000

    def test_branch_fraction_close_to_mix(self):
        tr = gen("gzip", n=20000)
        frac = sum(1 for op in tr.op if op == OpClass.BRANCH) / len(tr)
        target = get_profile("gzip").mix[OpClass.BRANCH]
        assert abs(frac - target) < 0.03

    def test_load_fraction_close_to_mix(self):
        tr = gen("gzip", n=20000)
        frac = sum(1 for op in tr.op if op == OpClass.LOAD) / len(tr)
        target = get_profile("gzip").mix[OpClass.LOAD]
        assert abs(frac - target) < 0.03

    def test_int_benchmark_has_no_fp_ops(self):
        tr = gen("gzip", n=10000)
        fp_ops = {int(OpClass.FPADD), int(OpClass.FPMUL),
                  int(OpClass.FPDIV), int(OpClass.FPSQRT)}
        assert not fp_ops & set(tr.op)

    def test_fp_benchmark_has_fp_ops(self):
        tr = gen("mgrid", n=10000)
        assert int(OpClass.FPADD) in set(tr.op)

    def test_addresses_within_footprint(self):
        profile = get_profile("gzip")
        tr = gen("gzip", n=10000)
        bound = max(profile.footprint_kb * 1024, 4096)
        for i, op in enumerate(tr.op):
            if op in (int(OpClass.LOAD), int(OpClass.STORE)):
                assert 0 <= tr.addr[i] < bound

    def test_pcs_within_code_footprint(self):
        profile = get_profile("gzip")
        tr = gen("gzip", n=10000)
        assert max(tr.pc) < profile.code_kb * 1024

    def test_branches_have_targets(self):
        tr = gen("gzip", n=10000)
        for i, op in enumerate(tr.op):
            if op == int(OpClass.BRANCH) and tr.taken[i]:
                assert tr.target[i] != tr.pc[i] + 4 or True
                assert tr.target[i] % 4 == 0

    def test_taken_branch_redirects_pc(self):
        tr = gen("gzip", n=10000)
        for i in range(len(tr) - 1):
            if tr.op[i] == int(OpClass.BRANCH) and tr.taken[i]:
                assert tr.pc[i + 1] == tr.target[i]

    def test_not_taken_branch_falls_through(self):
        profile = get_profile("gzip")
        code_bytes = profile.code_kb * 1024
        tr = gen("gzip", n=10000)
        for i in range(len(tr) - 1):
            if tr.op[i] == int(OpClass.BRANCH) and not tr.taken[i]:
                assert tr.pc[i + 1] == (tr.pc[i] + 4) % code_bytes


class TestDataflowValidity:
    def test_sources_reference_previously_written_registers(self):
        """Every non-zero source register must have been written earlier
        in the trace (or be part of the initial architectural state —
        the generator only picks producers from its rings, so after the
        warm start every pick must resolve)."""
        tr = gen("gcc", n=8000)
        written = set()
        unresolved = 0
        for i in range(len(tr)):
            for src in (tr.src1[i], tr.src2[i]):
                if src != NO_REG and not is_zero_reg(src):
                    if src not in written:
                        unresolved += 1
            if tr.dest[i] != NO_REG:
                written.add(tr.dest[i])
        # Only the very first instructions may reference unwritten regs.
        assert unresolved == 0

    def test_dest_classes_match_op(self):
        tr = gen("mgrid", n=8000)
        for i, op in enumerate(tr.op):
            d = tr.dest[i]
            if d == NO_REG:
                continue
            if op in (int(OpClass.FPADD), int(OpClass.FPMUL),
                      int(OpClass.FPDIV), int(OpClass.FPSQRT)):
                assert d >= FP_BASE
            if op in (int(OpClass.IALU), int(OpClass.IMUL),
                      int(OpClass.IDIV)):
                assert d < FP_BASE

    def test_stores_and_branches_have_no_dest(self):
        tr = gen("gzip", n=8000)
        for i, op in enumerate(tr.op):
            if op in (int(OpClass.STORE), int(OpClass.BRANCH)):
                assert tr.dest[i] == NO_REG

    def test_loads_have_dest(self):
        tr = gen("gzip", n=8000)
        for i, op in enumerate(tr.op):
            if op == int(OpClass.LOAD):
                assert tr.dest[i] != NO_REG


class TestWarmAddrs:
    def test_warm_addrs_cover_footprint_prefix(self):
        tr = gen("gzip", n=2000)
        profile = get_profile("gzip")
        assert tr.warm_addrs
        assert max(tr.warm_addrs) < profile.footprint_kb * 1024

    def test_warm_addrs_capped_for_huge_footprints(self):
        tr = gen("mcf", n=2000)
        # mcf's footprint is 96 MB; the warm prefix must stay bounded.
        assert len(tr.warm_addrs) < 100_000


class TestConvenienceAPI:
    def test_instruction_materialisation(self):
        tr = gen(n=100)
        instr = tr.instruction(0)
        assert instr.op == OpClass(tr.op[0])
        assert instr.pc == tr.pc[0]

    def test_iter_instructions(self):
        tr = gen(n=50)
        insns = list(tr.iter_instructions())
        assert len(insns) == 50
        assert insns[10].pc == tr.pc[10]

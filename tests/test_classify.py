"""ILP classification tests (paper §2 methodology)."""

import pytest

from repro.config.presets import paper_machine
from repro.trace.classify import (
    DEFAULT_HIGH_THRESHOLD,
    DEFAULT_LOW_THRESHOLD,
    classify_benchmark,
    classify_ipc,
)


class TestClassifyIpc:
    def test_bands(self):
        assert classify_ipc(DEFAULT_LOW_THRESHOLD - 0.01) == "low"
        assert classify_ipc(DEFAULT_LOW_THRESHOLD) == "med"
        assert classify_ipc(DEFAULT_HIGH_THRESHOLD - 0.01) == "med"
        assert classify_ipc(DEFAULT_HIGH_THRESHOLD) == "high"

    def test_custom_thresholds(self):
        assert classify_ipc(1.0, low_threshold=1.5, high_threshold=2.0) == "low"

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            classify_ipc(1.0, low_threshold=2.0, high_threshold=1.0)


class TestClassifyBenchmarks:
    """One representative benchmark per class must land in its band
    on the paper machine (the full 26-benchmark sweep lives in
    benchmarks/bench_table_classification.py)."""

    @pytest.mark.parametrize("name", ["mcf", "swim"])
    def test_low_examples(self, name):
        c = classify_benchmark(name, max_insns=6000)
        assert c.ilp_class == "low"
        assert c.matches_target

    @pytest.mark.parametrize("name", ["ammp", "fma3d"])
    def test_med_examples(self, name):
        c = classify_benchmark(name, max_insns=6000)
        assert c.ilp_class == "med"
        assert c.matches_target

    @pytest.mark.parametrize("name", ["mgrid", "eon"])
    def test_high_examples(self, name):
        c = classify_benchmark(name, max_insns=6000)
        assert c.ilp_class == "high"
        assert c.matches_target

    def test_custom_config(self):
        c = classify_benchmark("gzip", max_insns=4000,
                               config=paper_machine(iq_size=32))
        assert c.ipc > 0

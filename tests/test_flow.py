"""Tests for the whole-program flow pass (``repro.analysis.flow``).

Each interprocedural rule (RPR009-RPR012) gets a small fixture tree
that must trigger it, a near-miss that must not, and a suppression
check; plus call-graph resolution tests, the static/runtime contract
consistency check, the baseline mechanism, the CLI, and an end-to-end
check that the shipped ``src/repro`` tree is clean against the
committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import repro
import repro.frontend.fetch  # noqa: F401 — populates STAGE_CONTRACTS
import repro.pipeline.smt_core  # noqa: F401 — populates STAGE_CONTRACTS
from repro.analysis.contracts import (
    RESOURCES,
    STAGE_CALLABLES,
    STAGE_CONTRACTS,
)
from repro.analysis.flow import (
    FLOW_RULES,
    build_project,
    default_baseline_path,
    encode_baseline,
    flow_paths,
    load_baseline,
)
from repro.analysis.lint import main
from repro.util.encoding import stable_dumps


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise a fixture package tree under ``root / 'proj'``."""
    proj = root / "proj"
    for rel, source in files.items():
        path = proj / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return proj


def flow(root: Path, files: dict[str, str], baseline=None):
    return flow_paths([write_tree(root, files)], baseline=baseline)


def codes(violations) -> list[str]:
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# RPR009 — transitive hot closure
# ----------------------------------------------------------------------
class TestRPR009:
    FILES = {
        "pipeline/loop.py": """\
            def run(core):  # repro: hot
                return helper(core)


            def helper(core):
                buf = [0, 1]
                return buf
            """,
    }

    def test_callee_allocation_flagged(self, tmp_path):
        violations = flow(tmp_path, self.FILES)
        assert codes(violations) == ["RPR009"]
        v = violations[0]
        assert v.path.endswith("pipeline/loop.py")
        assert "helper()" in v.message
        assert "hot via run -> helper" in v.message

    def test_cross_module_closure(self, tmp_path):
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                from util.helpers import make

                def run(core):  # repro: hot
                    return make(core)
                """,
            "util/helpers.py": """\
                def make(core):
                    return {"a": 1}
                """,
        })
        assert codes(violations) == ["RPR009"]
        assert violations[0].path.endswith("util/helpers.py")

    def test_hot_function_itself_is_rpr008_territory(self, tmp_path):
        # Allocations in the marker-carrying function belong to the
        # per-file pass (RPR008); the flow pass only covers callees.
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                def run(core):  # repro: hot
                    return [0, 1]
                """,
        })
        assert violations == []

    def test_noqa_on_allocation_line_suppresses(self, tmp_path):
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                def run(core):  # repro: hot
                    return helper(core)


                def helper(core):
                    return [0, 1]  # repro: noqa[RPR009]
                """,
        })
        assert violations == []

    def test_noqa_on_call_edge_prunes_closure(self, tmp_path):
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                def run(core):  # repro: hot
                    return helper(core)  # repro: noqa[RPR009]


                def helper(core):
                    return [0, 1]
                """,
        })
        assert violations == []


# ----------------------------------------------------------------------
# call-graph resolution details the rules depend on
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_instance_attr_callable_resolves(self, tmp_path):
        # self._tick = self.real_tick in the class body: the cached
        # stage-callable idiom the pipeline itself uses.
        violations = flow(tmp_path, {
            "pipeline/engine.py": """\
                class Engine:
                    def __init__(self):
                        self._tick = self.real_tick

                    def run(self):  # repro: hot
                        self._tick()

                    def real_tick(self):
                        return {1: 2}
                """,
        })
        assert codes(violations) == ["RPR009"]
        assert "Engine.real_tick()" in violations[0].message

    def test_generic_method_on_plain_container_not_cha_resolved(
            self, tmp_path):
        # cache.get(...) on a local dict must not resolve to the
        # project's ResultCache.get (type-guided CHA).
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                def run(core, cache):  # repro: hot
                    return cache.get(1)
                """,
            "util/store.py": """\
                class ResultCache:
                    def get(self, key):
                        return [key]
                """,
        })
        assert violations == []

    def test_cha_follows_matching_receiver_resource(self, tmp_path):
        # core.iq.insert(...) resolves to IssueQueue.insert because the
        # receiver's resource (iq) matches the class's resource.
        violations = flow(tmp_path, {
            "pipeline/loop.py": """\
                def run(core):  # repro: hot
                    core.iq.insert(1)
                """,
            "core/iq.py": """\
                class IssueQueue:
                    def insert(self, entry):
                        self.slots.append([entry])
                """,
        })
        assert codes(violations) == ["RPR009"]
        assert "IssueQueue.insert()" in violations[0].message


# ----------------------------------------------------------------------
# RPR010 — determinism taint
# ----------------------------------------------------------------------
class TestRPR010:
    def files(self, source_line: str) -> dict[str, str]:
        return {
            "util/clock.py": f"""\
                import time  # repro: noqa[RPR001]


                def stamp():
                    return {source_line}
                """,
            "pipeline/loop.py": """\
                from util.clock import stamp


                def step(core):
                    return stamp()
                """,
        }

    def test_taint_reaches_sim_code(self, tmp_path):
        violations = flow(
            tmp_path,
            self.files("time.time()  # repro: noqa[RPR001]"),
        )
        assert codes(violations) == ["RPR010"]
        v = violations[0]
        assert v.path.endswith("pipeline/loop.py")
        assert "step() reaches a nondeterministic source" in v.message
        assert "stamp() calls time.time()" in v.message

    def test_noqa_rpr001_does_not_launder_taint(self, tmp_path):
        # The fixture above already suppresses RPR001 on every line;
        # the taint still flows. This is the laundering guarantee.
        violations = flow(
            tmp_path,
            self.files("time.time()  # repro: noqa[RPR001]"),
        )
        assert codes(violations) == ["RPR010"]

    def test_noqa_rpr010_on_source_kills_seed(self, tmp_path):
        violations = flow(
            tmp_path,
            self.files("time.time()  # repro: noqa[RPR010] — audited"),
        )
        assert violations == []

    def test_nonsim_caller_not_flagged(self, tmp_path):
        violations = flow(tmp_path, {
            "util/clock.py": """\
                import time  # repro: noqa[RPR001]


                def stamp():
                    return time.time()  # repro: noqa[RPR001]
                """,
            "util/report.py": """\
                from util.clock import stamp


                def banner():
                    return stamp()
                """,
        })
        assert violations == []

    def test_entropy_sources_seed_taint(self, tmp_path):
        violations = flow(tmp_path, {
            "util/ids.py": """\
                import uuid


                def fresh_id():
                    return uuid.uuid4()
                """,
            "pipeline/loop.py": """\
                from util.ids import fresh_id


                def step(core):
                    return fresh_id()
                """,
        })
        assert codes(violations) == ["RPR010"]
        assert "uuid.uuid4()" in violations[0].message


# ----------------------------------------------------------------------
# RPR011 — stage access contracts
# ----------------------------------------------------------------------
class TestRPR011:
    FILES = {
        "pipeline/stage.py": """\
            from repro.analysis.contracts import stage_contract


            class Core:
                @stage_contract("commit", reads=("config",),
                                writes=("rob",))
                def _commit(self, cycle):
                    self.rob.pop()
                    self.iq.free_slots = 1
                    self.fu.busy
                    self.bump()

                def bump(self):
                    self.watchdog.tick()
            """,
    }

    def test_undeclared_accesses_flagged(self, tmp_path):
        violations = flow(tmp_path, self.FILES)
        assert codes(violations) == ["RPR011"] * 3
        messages = "\n".join(v.message for v in violations)
        assert "stage 'commit' writes 'iq'" in messages
        assert "stage 'commit' reads 'fu'" in messages
        # The breach in the *callee* is attributed to the stage whose
        # closure reached it.
        assert "stage 'commit' writes 'watchdog'" in messages
        assert "Core.bump()" in messages

    def test_declared_accesses_clean(self, tmp_path):
        violations = flow(tmp_path, {
            "pipeline/stage.py": """\
                from repro.analysis.contracts import stage_contract


                class Core:
                    @stage_contract("commit", reads=("config",),
                                    writes=("rob",))
                    def _commit(self, cycle):
                        self.rob.pop()
                        return self.cfg.width
                """,
        })
        assert violations == []

    def test_noqa_on_access_suppresses(self, tmp_path):
        files = dict(self.FILES)
        files["pipeline/stage.py"] = files["pipeline/stage.py"].replace(
            "self.iq.free_slots = 1",
            "self.iq.free_slots = 1  # repro: noqa[RPR011]",
        )
        messages = "\n".join(v.message for v in flow(tmp_path, files))
        assert "writes 'iq'" not in messages
        assert "reads 'fu'" in messages

    def test_noqa_on_call_edge_prunes_stage_closure(self, tmp_path):
        files = dict(self.FILES)
        files["pipeline/stage.py"] = files["pipeline/stage.py"].replace(
            "self.bump()",
            "self.bump()  # repro: noqa[RPR011]",
        )
        messages = "\n".join(v.message for v in flow(tmp_path, files))
        assert "watchdog" not in messages
        assert "writes 'iq'" in messages


# ----------------------------------------------------------------------
# RPR012 — fork/pickle safety of worker payloads
# ----------------------------------------------------------------------
class TestRPR012:
    HEADER = "from repro.exec import SimJob, execute_jobs\n\n\n"

    def one(self, tmp_path, body: str):
        return flow(tmp_path, {"util/launch.py": self.HEADER + body})

    def test_lambda_payload_flagged(self, tmp_path):
        violations = self.one(
            tmp_path, "job = SimJob(fn=lambda: 1)\n"
        )
        assert codes(violations) == ["RPR012"]
        assert "a lambda" in violations[0].message

    def test_nested_function_closure_flagged(self, tmp_path):
        violations = self.one(tmp_path, textwrap.dedent("""\
            def build():
                def inner():
                    return 2
                return SimJob(inner)
            """))
        assert codes(violations) == ["RPR012"]
        assert "nested function 'inner'" in violations[0].message

    def test_handle_holding_object_flagged(self, tmp_path):
        violations = self.one(
            tmp_path, 'job = SimJob(open("trace.bin"))\n'
        )
        assert codes(violations) == ["RPR012"]
        assert "handle-holding open() object" in violations[0].message

    def test_module_level_function_payload_clean(self, tmp_path):
        violations = self.one(tmp_path, textwrap.dedent("""\
            def worker_entry(spec):
                return spec


            def build(spec):
                return SimJob(worker_entry, spec)
            """))
        assert violations == []

    def test_progress_callback_stays_in_parent(self, tmp_path):
        # Only the job list crosses the fork boundary; the progress
        # callback runs in the parent and may close over anything.
        violations = self.one(tmp_path, textwrap.dedent("""\
            def run(jobs):
                return execute_jobs(jobs, progress=lambda s: None)
            """))
        assert violations == []

    def test_jobs_argument_is_checked(self, tmp_path):
        violations = self.one(tmp_path, textwrap.dedent("""\
            def run():
                return execute_jobs(jobs=[lambda: 3])
            """))
        assert codes(violations) == ["RPR012"]

    def test_noqa_suppresses(self, tmp_path):
        violations = self.one(
            tmp_path,
            "job = SimJob(fn=lambda: 1)  # repro: noqa[RPR012]\n",
        )
        assert violations == []


# ----------------------------------------------------------------------
# RPR013 — blocking I/O reachable from async sweep-service handlers
# ----------------------------------------------------------------------
class TestRPR013:
    FILES = {
        "serve/app.py": """\
            import time


            async def handler():
                return helper()


            def helper():
                time.sleep(0.1)
            """,
    }

    def test_blocking_call_in_async_closure_flagged(self, tmp_path):
        violations = flow(tmp_path, self.FILES)
        assert codes(violations) == ["RPR013"]
        v = violations[0]
        assert v.path.endswith("serve/app.py")
        assert "time.sleep" in v.message
        assert "handler -> helper" in v.message

    def test_blocking_method_seed_in_handler_itself(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/app.py": """\
                async def handler(path):
                    return path.read_text()
                """,
        })
        assert codes(violations) == ["RPR013"]
        assert "read_text" in violations[0].message

    def test_only_serve_packages_are_seeded(self, tmp_path):
        # The same shape outside a serve package is not this rule's
        # business (async code elsewhere has no heartbeat to stall).
        files = {"web/app.py": self.FILES["serve/app.py"]}
        assert flow(tmp_path, files) == []

    def test_sync_serve_code_not_seeded(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/tools.py": """\
                import time


                def cli_entry():
                    time.sleep(0.1)
                """,
        })
        assert violations == []

    def test_socket_create_connection_seed_fires(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import socket


                async def handler():
                    return socket.create_connection(("localhost", 80))
                """,
        })
        assert codes(violations) == ["RPR013"]
        assert "socket.create_connection" in violations[0].message

    def test_select_select_seed_fires(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import select


                async def handler(rd):
                    return select.select([rd], [], [], 0.5)
                """,
        })
        assert codes(violations) == ["RPR013"]
        assert "select.select" in violations[0].message

    def test_subprocess_run_seed_fires(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import subprocess


                async def handler():
                    return subprocess.run(["true"], check=True)
                """,
        })
        assert codes(violations) == ["RPR013"]
        assert "subprocess.run" in violations[0].message

    def test_run_in_executor_is_the_escape_hatch(self, tmp_path):
        # Callables merely passed to run_in_executor create no call
        # edge: thread-offloaded blocking work is structurally outside
        # the async closure.
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import time


                async def handler(loop, pool):
                    return await loop.run_in_executor(pool, helper)


                def helper():
                    time.sleep(0.1)
                """,
        })
        assert violations == []

    def test_noqa_on_call_edge_prunes_closure(self, tmp_path):
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import time


                async def handler():
                    return helper()  # repro: noqa[RPR013]


                def helper():
                    time.sleep(0.1)
                """,
        })
        assert violations == []

    def test_admin_and_health_handlers_are_seeded(self, tmp_path):
        # The overload surface (drain/health admin handlers) is async
        # like every other handler: blocking work in its closure stalls
        # heartbeats exactly the same way and must be flagged.
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import time


                async def _post_drain(writer):
                    return _settle()


                async def _get_health(writer):
                    return {"state": "serving"}


                def _settle():
                    time.sleep(0.5)
                """,
        })
        assert codes(violations) == ["RPR013"]
        assert "_post_drain -> _settle" in violations[0].message

    def test_async_sleep_inside_drain_loop_is_fine(self, tmp_path):
        # The real drain grace loop awaits asyncio.sleep — cooperative,
        # not blocking — so the closure stays clean.
        violations = flow(tmp_path, {
            "serve/app.py": """\
                import asyncio


                async def drain(grace):
                    while True:
                        await asyncio.sleep(0.05)
                """,
        })
        assert violations == []

    def test_journal_and_cache_modules_exempt(self, tmp_path):
        # The fsync'd journal/cache appends are the service's designated
        # synchronous core; reaching them from a handler is sanctioned.
        violations = flow(tmp_path, {
            "serve/app.py": """\
                from exec.journal import append


                async def handler():
                    return append()
                """,
            "exec/journal.py": """\
                def append():
                    import subprocess
                    subprocess.run(["sync"])
                """,
        })
        assert violations == []


# ----------------------------------------------------------------------
# RPR000 — parse errors surface through the flow pass too
# ----------------------------------------------------------------------
def test_syntax_error_reported(tmp_path):
    violations = flow(tmp_path, {"util/broken.py": "def broken(:\n"})
    assert codes(violations) == ["RPR000"]


# ----------------------------------------------------------------------
# static declarations == runtime registry
# ----------------------------------------------------------------------
class TestContractConsistency:
    def test_every_stage_callable_has_a_contract(self):
        assert set(STAGE_CONTRACTS) == set(STAGE_CALLABLES.values())
        for contract in STAGE_CONTRACTS.values():
            assert contract.reads <= set(RESOURCES)
            assert contract.writes <= set(RESOURCES)

    def test_static_parse_matches_runtime_registry(self):
        # The flow pass reads the decorators from source; the sanitizer
        # reads them from STAGE_CONTRACTS at import time. One
        # declaration, two enforcement layers — they must agree.
        project = build_project([Path(repro.__file__).parent])
        static = {
            fn.contract[0]: fn.contract
            for fn in project.funcs.values()
            if fn.contract is not None
        }
        assert set(static) == set(STAGE_CONTRACTS)
        for stage, (_name, reads, writes) in static.items():
            contract = STAGE_CONTRACTS[stage]
            assert reads == contract.reads, stage
            assert writes == contract.writes, stage


# ----------------------------------------------------------------------
# baseline mechanism
# ----------------------------------------------------------------------
class TestBaseline:
    FILES = {
        "pipeline/loop.py": """\
            def run(core):  # repro: hot
                return helper(core)


            def helper(core):
                return [0, 1]
            """,
    }

    def test_baselined_findings_filtered(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        found = flow_paths([root])
        assert codes(found) == ["RPR009"]
        baseline = encode_baseline(found)
        assert flow_paths([root], baseline=baseline) == []

    def test_fingerprints_are_line_free(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        baseline = encode_baseline(flow_paths([root]))
        # Shift every line down: the finding moves but its fingerprint
        # (path, code, message) does not, so the baseline still holds.
        target = root / "pipeline/loop.py"
        target.write_text(
            "# a new leading comment\n" + target.read_text(),
            encoding="utf-8",
        )
        assert flow_paths([root], baseline=baseline) == []

    def test_new_findings_still_surface(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        baseline = encode_baseline(flow_paths([root]))
        target = root / "pipeline/loop.py"
        target.write_text(
            target.read_text() + "\n\ndef extra(core):\n    return {}\n"
            "\n\ndef run2(core):  # repro: hot\n    return extra(core)\n",
            encoding="utf-8",
        )
        fresh = flow_paths([root], baseline=baseline)
        assert codes(fresh) == ["RPR009"]
        assert "extra()" in fresh[0].message


# ----------------------------------------------------------------------
# CLI (python -m repro.analysis flow)
# ----------------------------------------------------------------------
class TestCli:
    CLEAN = {"util/ok.py": "def fine():\n    return 1\n"}
    DIRTY = TestBaseline.FILES

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert main(["flow", str(root), "--no-baseline"]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.DIRTY)
        assert main(["flow", str(root), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR009" in out
        assert "1 violation(s) found" in out

    def test_json_output_is_byte_stable(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.DIRTY)
        assert main(["flow", str(root), "--no-baseline", "--json"]) == 1
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["count"] == 1
        assert payload["rules"] == FLOW_RULES
        assert [v["code"] for v in payload["violations"]] == ["RPR009"]
        # Same contract as every committed JSON artifact: re-encoding
        # the decoded payload reproduces the bytes exactly.
        assert out == stable_dumps(payload)

    def test_update_then_check_roundtrip(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.DIRTY)
        baseline = tmp_path / "flow_baseline.json"
        assert main([
            "flow", str(root), "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        body = json.loads(baseline.read_text(encoding="utf-8"))
        assert body["version"] == 1
        assert [f["code"] for f in body["findings"]] == ["RPR009"]
        assert main([
            "flow", str(root), "--baseline", str(baseline),
        ]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        missing = tmp_path / "nope.json"
        assert main(["flow", str(root), "--baseline", str(missing)]) == 2
        assert "no such baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the shipped tree is clean
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_against_committed_baseline(monkeypatch):
    repo_root = Path(repro.__file__).resolve().parents[2]
    monkeypatch.chdir(repo_root)
    baseline_path = default_baseline_path()
    assert baseline_path.exists(), "results/flow_baseline.json missing"
    violations = flow_paths(
        [Path("src/repro")], baseline=load_baseline(baseline_path)
    )
    assert violations == [], "\n".join(v.render() for v in violations)

"""Fetch-stage unit tests: I-Count ordering, fetch breaks, stalls."""

from repro.config.presets import small_machine
from repro.frontend.icount import icount_order, round_robin_order
from repro.pipeline.smt_core import SMTProcessor
from tests.trace_builder import TraceBuilder


class FakeThread:
    def __init__(self, tid, icount):
        self.tid = tid
        self.icount = icount


class TestOrderingPolicies:
    def test_icount_prefers_fewest_inflight(self):
        threads = [FakeThread(0, 10), FakeThread(1, 2), FakeThread(2, 5)]
        order = icount_order(threads, cycle=0)
        assert [t.tid for t in order] == [1, 2, 0]

    def test_icount_rotates_ties(self):
        threads = [FakeThread(0, 3), FakeThread(1, 3)]
        first = icount_order(threads, cycle=0)[0].tid
        second = icount_order(threads, cycle=1)[0].tid
        assert {first, second} == {0, 1}

    def test_round_robin_rotates(self):
        threads = [FakeThread(i, 0) for i in range(3)]
        assert [t.tid for t in round_robin_order(threads, 0)] == [0, 1, 2]
        assert [t.tid for t in round_robin_order(threads, 1)] == [1, 2, 0]

    def test_single_thread(self):
        threads = [FakeThread(0, 0)]
        assert icount_order(threads, 5) == threads
        assert round_robin_order(threads, 5) == threads


class TestFetchBehaviour:
    def test_fetch_width_respected(self):
        cfg = small_machine()  # fetch_width 4
        trace = TraceBuilder().nops(100).build()
        core = SMTProcessor(cfg, [trace])
        core.step()
        assert core.stats.fetched <= cfg.fetch_width

    def test_two_thread_limit(self):
        cfg = small_machine()
        traces = [TraceBuilder().nops(50).build() for _ in range(3)]
        core = SMTProcessor(cfg, traces)
        core.step()
        fetched_threads = sum(
            1 for n in core.stats.fetched_per_thread if n > 0
        )
        assert fetched_threads <= cfg.fetch_threads_per_cycle

    def test_taken_branch_breaks_fetch_group(self):
        """A predicted-taken branch ends its thread's fetch group; train
        the predictor via warmup so the prediction is actually taken."""
        tb = TraceBuilder()
        for _ in range(50):
            tb.branch(taken=True, target=0, pc=0)
            tb.ialu(pc=0 + 4)  # fall-through instruction never reached
        # Build a loop-shaped trace: branch at pc0 -> target 0.
        trace = tb.build()
        cfg = small_machine()
        core = SMTProcessor(cfg, [trace], warmup=60)
        core.step()
        # At most one branch fetched in the first group once predicted
        # taken (and never more than fetch width).
        assert core.stats.fetched <= cfg.fetch_width

    def test_icache_miss_stalls_thread(self):
        trace = TraceBuilder().nops(20).build(warm_code=False)
        cfg = small_machine()
        core = SMTProcessor(cfg, [trace])
        core.step()
        ts = core.threads[0]
        assert core.stats.fetched == 0  # first access misses everything
        assert ts.stalled_until > 0

    def test_pipe_capacity_backpressure(self):
        """With rename hard-blocked (no ROB progress), fetch stops once
        the front-end pipe fills."""
        cfg = small_machine()
        trace = TraceBuilder().nops(500).build()
        core = SMTProcessor(cfg, [trace])
        ts = core.threads[0]
        for _ in range(100):
            core.fetch_unit.fetch_cycle(core, core.cycle)
            core.cycle += 1
        assert len(ts.pipe) <= ts.pipe_capacity


class TestRoundRobinConfig:
    def test_round_robin_machine_runs(self):
        cfg = small_machine(fetch_policy="round_robin")
        traces = [TraceBuilder().nops(80).build() for _ in range(2)]
        core = SMTProcessor(cfg, traces)
        stats = core.run(10_000)
        assert stats.committed_total == 160


class TestStallPolicy:
    def _miss_bound_trace(self):
        tb = TraceBuilder()
        for i in range(30):
            tb.load(dest=1, addr=0x100000 * (i + 1))  # memory miss each
            tb.ialu(dest=2, src1=1)
        return tb.build()

    def test_stall_gates_fetch_during_misses(self):
        cfg = small_machine(fetch_policy="stall")
        core = SMTProcessor(cfg, [self._miss_bound_trace()])
        stats = core.run(10_000)
        assert stats.committed_total == 60  # still completes

    def test_stall_protects_partner_thread(self):
        fast = TraceBuilder().nops(3000).build()
        results = {}
        for policy in ("round_robin", "stall"):
            cfg = small_machine(fetch_policy=policy)
            core = SMTProcessor(cfg, [self._miss_bound_trace(), fast])
            stats = core.run(10_000)
            results[policy] = stats.committed[1]
        # Gating the miss-bound thread leaves at least as much front-end
        # and queue capacity for the healthy thread.
        assert results["stall"] >= results["round_robin"]

    def test_pending_miss_counter_returns_to_zero(self):
        cfg = small_machine(fetch_policy="stall")
        core = SMTProcessor(cfg, [self._miss_bound_trace()])
        core.run(10_000)
        assert core.threads[0].pending_long_misses == 0


class TestDabExclusiveConfig:
    def test_dab_exclusive_machine_runs(self):
        from repro.config.presets import paper_machine
        from repro.experiments.runner import simulate_mix

        cfg = paper_machine(iq_size=32, scheduler="2op_ooo",
                            dab_exclusive=True)
        r = simulate_mix(["equake", "gzip"], cfg, max_insns=1200,
                         warmup=2000)
        assert r.throughput_ipc > 0

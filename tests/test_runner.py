"""Experiment runner tests: determinism, caching, fairness plumbing."""

import pytest

from repro.config.presets import small_machine
from repro.experiments.runner import (
    clear_solo_cache,
    default_warmup,
    simulate_benchmark,
    simulate_mix,
    simulate_mix_with_fairness,
    solo_ipc,
    thread_traces,
)

CFG = small_machine()
FAST = dict(max_insns=1500, seed=0, warmup=2000)


class TestSimulateMix:
    def test_returns_populated_result(self):
        r = simulate_mix(["gzip", "parser"], CFG, **FAST)
        assert r.benchmarks == ("gzip", "parser")
        assert r.scheduler == CFG.scheduler
        assert r.iq_size == CFG.iq_size
        assert r.throughput_ipc > 0
        assert r.cycles > 0

    def test_deterministic(self):
        a = simulate_mix(["gzip", "parser"], CFG, **FAST)
        b = simulate_mix(["gzip", "parser"], CFG, **FAST)
        assert a.cycles == b.cycles
        assert a.committed == b.committed

    def test_seed_changes_outcome(self):
        a = simulate_mix(["gzip"], CFG, max_insns=1500, seed=0, warmup=2000)
        b = simulate_mix(["gzip"], CFG, max_insns=1500, seed=9, warmup=2000)
        assert a.cycles != b.cycles

    def test_stops_at_budget(self):
        r = simulate_mix(["gzip", "mcf"], CFG, **FAST)
        assert max(r.committed) >= FAST["max_insns"]

    def test_single_benchmark_wrapper(self):
        r = simulate_benchmark("gzip", CFG, **FAST)
        assert r.num_threads == 1


class TestTraceSeeding:
    def test_duplicate_benchmarks_get_distinct_traces(self):
        traces = thread_traces(["gzip", "gzip"], 1000, seed=0, warmup=500)
        assert traces[0] is not traces[1]
        assert traces[0].op != traces[1].op

    def test_slot_trace_matches_solo_trace(self):
        """A benchmark's first in-mix occurrence replays the same trace
        as its single-thread baseline (required for weighted IPC)."""
        in_mix = thread_traces(["parser", "gzip"], 1000, 0, 500)[1]
        wait = thread_traces(["gzip"], 1000, 0, 500)[0]
        assert in_mix is wait

    def test_default_warmup_scales(self):
        assert default_warmup(1000) >= 1000
        assert default_warmup(100_000) == 100_000


class TestFairness:
    def setup_method(self):
        clear_solo_cache()

    def test_fairness_in_sane_range(self):
        _, fairness = simulate_mix_with_fairness(
            ["gzip", "parser"], CFG, max_insns=1500, seed=0
        )
        # Each thread runs no faster than alone (modulo small cache
        # interactions), so the metric lives in (0, ~1.2].
        assert 0.0 < fairness < 1.3

    def test_solo_cache_reuse(self):
        clear_solo_cache()
        a = solo_ipc("gzip", CFG, max_insns=1500, seed=0)
        b = solo_ipc("gzip", CFG, max_insns=1500, seed=0)
        assert a == b

    def test_solo_cache_distinguishes_configs(self):
        a = solo_ipc("gzip", CFG, max_insns=1500, seed=0)
        b = solo_ipc("gzip", CFG.replace(iq_size=8), max_insns=1500, seed=0)
        assert a != b

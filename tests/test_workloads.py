"""Workload table tests (paper Tables 2-4)."""

import pytest

from repro.trace.profiles import PROFILES
from repro.workloads.mixes import (
    FOUR_THREAD_MIXES,
    THREE_THREAD_MIXES,
    TWO_THREAD_MIXES,
    Mix,
    mixes_for_threads,
)
from repro.workloads.spec2000 import CFP2000, CINT2000, SPEC2000, ilp_class_of


class TestRoster:
    def test_26_programs(self):
        assert len(SPEC2000) == 26
        assert len(CINT2000) == 12
        assert len(CFP2000) == 14

    def test_no_overlap(self):
        assert not set(CINT2000) & set(CFP2000)

    def test_ilp_class_of(self):
        assert ilp_class_of("mcf") == "low"
        assert ilp_class_of("mgrid") == "high"


class TestMixTables:
    @pytest.mark.parametrize("table,threads", [
        (TWO_THREAD_MIXES, 2),
        (THREE_THREAD_MIXES, 3),
        (FOUR_THREAD_MIXES, 4),
    ])
    def test_twelve_mixes_each(self, table, threads):
        assert len(table) == 12
        for mix in table:
            assert mix.num_threads == threads
            for b in mix.benchmarks:
                assert b in PROFILES

    def test_paper_table3_contents(self):
        """Spot-check the 2-thread mixes against the paper's Table 3."""
        assert TWO_THREAD_MIXES[0].benchmarks == ("equake", "lucas")
        assert TWO_THREAD_MIXES[6].benchmarks == ("parser", "vortex")
        assert TWO_THREAD_MIXES[11].benchmarks == ("ammp", "gzip")

    def test_paper_table4_contents(self):
        assert THREE_THREAD_MIXES[0].benchmarks == ("mgrid", "equake", "art")
        assert THREE_THREAD_MIXES[8].benchmarks == ("art", "lucas", "galgel")

    def test_paper_table2_contents(self):
        assert FOUR_THREAD_MIXES[0].benchmarks == (
            "mgrid", "equake", "art", "lucas")
        assert FOUR_THREAD_MIXES[11].benchmarks == (
            "vortex", "mesa", "mgrid", "eon")

    def test_mixes_for_threads(self):
        assert mixes_for_threads(2) is TWO_THREAD_MIXES
        assert mixes_for_threads(3) is THREE_THREAD_MIXES
        assert mixes_for_threads(4) is FOUR_THREAD_MIXES
        with pytest.raises(ValueError):
            mixes_for_threads(5)

    def test_mix_names_unique(self):
        names = [m.name for t in (2, 3, 4) for m in mixes_for_threads(t)]
        assert len(names) == len(set(names))


class TestMixClass:
    def test_classification_string(self):
        mix = Mix("x", ("mcf", "gzip"))
        assert mix.classification == "1 LOW + 1 HIGH"

    def test_homogeneous_classification(self):
        mix = Mix("x", ("equake", "lucas"))
        assert mix.classification == "2 LOW"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            Mix("x", ("gzip", "quake3"))

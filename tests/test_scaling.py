"""Scaling-study driver tests (reduced grid)."""

import pytest

from repro.config.presets import small_machine
from repro.experiments.scaling import ScalingResult, run_scaling


@pytest.fixture(scope="module")
def result():
    cfg = small_machine(int_phys_regs=192, fp_phys_regs=192)
    return run_scaling(
        thread_counts=(2, 3), iq_sizes=(8, 16), max_insns=1000,
        max_mixes=1, base_config=cfg,
    )


class TestRunScaling:
    def test_grid_complete(self, result):
        assert len(result.ipc) == 3 * 2 * 2
        for key, ipc in result.ipc.items():
            assert ipc > 0, key

    def test_thread_scaling_normalised(self, result):
        series = result.thread_scaling("traditional", 16)
        assert series[0] == pytest.approx(1.0)
        assert len(series) == 2

    def test_iq_scaling_ratio(self, result):
        r = result.iq_scaling("traditional", 2)
        assert r > 0

    def test_rows_sorted(self, result):
        rows = result.rows()
        assert len(rows) == 12
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))

    def test_progress_callback(self):
        lines = []
        cfg = small_machine()
        run_scaling(thread_counts=(2,), iq_sizes=(8,), max_insns=600,
                    max_mixes=1, base_config=cfg, progress=lines.append)
        assert len(lines) == 3  # one per scheduler

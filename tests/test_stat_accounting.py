"""Stat-accounting and boundary invariants seeded by mutation analysis.

Each test here kills specific mutants that survived the first full
``python -m repro.analysis mutate src/repro/pipeline`` run — faults
that keep the simulator running and the headline stats digests
(cycles/committed/extras) well-formed while silently corrupting the
secondary counters the paper's stall-attribution figures are built
from. See docs/analysis.md, "Baseline and survivor triage".
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.config.presets import small_machine
from repro.isa.opcodes import OP_INTERVAL, OpClass
from repro.pipeline.fu import FunctionalUnitPool
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.smt_core import SMTProcessor
from repro.pipeline.thread import ThreadState
from tests.trace_builder import TraceBuilder


def mixed_trace(n=300):
    tb = TraceBuilder()
    for i in range(n):
        k = i % 5
        if k == 0:
            tb.load(dest=1 + (i % 6), addr=0x1000 + (i % 8) * 8)
        elif k == 1:
            tb.ialu(dest=1 + (i % 6), src1=1 + ((i + 1) % 6))
        elif k == 2:
            tb.store(src1=1 + (i % 6), addr=0x1000 + (i % 8) * 8)
        elif k == 3:
            tb.ialu(dest=1 + (i % 6), src1=1 + ((i + 2) % 6),
                    src2=1 + ((i + 3) % 6))
        else:
            tb.branch(src1=1 + (i % 6))
    return tb.build()


# ----------------------------------------------------------------------
# issue/dispatch/residency accounting identities
# ----------------------------------------------------------------------
class TestIssueAccounting:
    @pytest.mark.parametrize("sched", ["traditional", "2op_block",
                                       "2op_ooo"])
    def test_counters_balance_on_a_drained_flushless_run(self, sched):
        """In a drained run with no watchdog flushes, every committed
        instruction was dispatched exactly once and issued exactly
        once, and IQ residency samples cover exactly the non-DAB
        issues."""
        cfg = small_machine(scheduler=sched)
        core = SMTProcessor(cfg, [mixed_trace(), mixed_trace(200)])
        s = core.run(20_000)
        assert s.watchdog_flushes == 0
        assert s.committed_total == 500
        assert s.dispatched == s.committed_total
        assert s.issued == s.committed_total
        assert s.iq_residency_count == s.issued - s.dab_issues
        # Dispatch and issue are distinct pipeline stages: nothing can
        # issue on its dispatch cycle, so every sample is >= 1 cycle.
        assert s.iq_residency_sum >= s.iq_residency_count

    def test_observed_issues_match_the_counters_exactly(self):
        """A ``_start_execution`` observer recomputes issued /
        iq_residency_{sum,count} independently; the stats must agree
        exactly (catches dropped *and* doubled increments)."""

        class Obs(SMTProcessor):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.obs_issued = 0
                self.obs_sum = 0
                self.obs_count = 0

            def _start_execution(self, instr, cycle, from_iq):
                self.obs_issued += 1
                if from_iq:
                    self.obs_sum += cycle - instr.dispatch_cycle
                    self.obs_count += 1
                return super()._start_execution(instr, cycle, from_iq)

        core = Obs(small_machine(iq_size=8), [mixed_trace(120)])
        s = core.run(10_000)
        assert s.issued == core.obs_issued == 120
        assert s.iq_residency_sum == core.obs_sum
        assert s.iq_residency_count == core.obs_count

    def test_long_miss_classification_is_exact(self):
        """Only L2 misses are long misses, and a memory access sits
        *exactly* on the ``extra >= memory_latency`` boundary: cold
        4 KiB-strided loads must all be flagged, warmed L1 hits must
        not (catches both off-by-one directions and the swapped
        comparison, on the inlined issue path and on the observed
        ``_start_execution`` path)."""

        class Rec(SMTProcessor):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.instrs = []

            def new_instr(self, ts, idx, cycle):
                di = super().new_instr(ts, idx, cycle)
                self.instrs.append(di)
                return di

        class Hooked(Rec):
            def _start_execution(self, instr, cycle, from_iq):
                return super()._start_execution(instr, cycle, from_iq)

        tb = TraceBuilder()
        for i in range(8):
            tb.load(dest=1 + (i % 4), addr=0x200000 + i * 4096)
        for _ in range(10):
            tb.load(dest=5, addr=0x500)
        trace = tb.build(warm_addrs=[0x500])
        for cls in (Rec, Hooked):
            core = cls(small_machine(), [trace])
            s = core.run(10_000)
            assert s.committed_total == 18
            assert sum(i.long_miss for i in core.instrs) == 8
            # The gauge balances: each of the 8 increments was paired
            # with exactly one writeback decrement.
            assert core.threads[0].pending_long_misses == 0

    def test_rotation_starts_at_the_current_cycle_thread(self):
        """Round-robin priority rotation: on cycle ``c`` the rotation
        leads with thread ``c % nthreads`` (a phase shift starves the
        paper's fairness assumption)."""
        traces = [mixed_trace(8) for _ in range(3)]
        core = SMTProcessor(small_machine(), traces)
        for c in range(4):
            assert [ts.tid for ts in core._rotation(c)] == [
                (c + i) % 3 for i in range(3)
            ]

    def test_pending_long_misses_drain_back_to_zero(self):
        """Every long-miss load increments the per-thread gauge at
        issue and decrements it at writeback: a drained pipeline must
        land on exactly zero (a dropped increment goes negative, a
        doubled one stays positive)."""
        tb = TraceBuilder()
        for i in range(40):
            tb.load(dest=1 + (i % 4), addr=0x100000 + i * 4096)
            tb.ialu(dest=5, src1=1 + (i % 4))
        core = SMTProcessor(small_machine(), [tb.build()])
        s = core.run(10_000)
        assert s.committed_total == 80
        assert all(ts.pending_long_misses == 0 for ts in core.threads)
        # The scenario actually exercised the gauge: cold 4 KiB-strided
        # loads must long-miss.
        assert s.iq_residency_count > 0

    def test_dispatch_stall_attribution_is_pinned(self):
        """Deterministic tiny-IQ pileup: a long-miss load with 30
        dependents on a 4-entry IQ. The stall attribution counters are
        exact (a dropped or doubled increment moves them)."""
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x90000)
        for i in range(30):
            tb.ialu(dest=2 + (i % 4), src1=1)
        core = SMTProcessor(small_machine(iq_size=4), [tb.build()])
        s = core.run(10_000)
        assert s.committed_total == 31
        assert s.watchdog_flushes == 0
        assert s.no_dispatch_cycles == 101
        assert s.iq_full_dispatch_stalls == 101

    def test_watchdog_flush_count_is_exact(self):
        """The §4 watchdog scenario flushes exactly twice — not
        'at least once' (a doubled counter would report four)."""
        tb = TraceBuilder()
        tb.load(dest=1, addr=0x10000)
        tb.load(dest=2, addr=0x20000)
        for i in range(10):
            tb.ialu(dest=3 + (i % 4), src1=1, src2=2)
        cfg = small_machine(scheduler="2op_ooo", deadlock_mode="watchdog",
                            watchdog_cycles=20)
        core = SMTProcessor(cfg, [tb.build()])
        s = core.run(10_000)
        assert s.committed_total == 12
        assert s.watchdog_flushes == 2


# ----------------------------------------------------------------------
# structure boundary conditions
# ----------------------------------------------------------------------
class TestStructureBoundaries:
    def test_rob_capacity_guard_is_exact(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)
        assert ReorderBuffer(1).capacity == 1

    def test_lsq_capacity_guard_is_exact(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(0)
        assert LoadStoreQueue(1).capacity == 1

    def test_rob_flags_duplicate_tseq_as_order_violation(self):
        """Program order is *strict*: a repeated tseq is a violation,
        not a tie."""
        rob = ReorderBuffer(4)
        rob.allocate(SimpleNamespace(tseq=1))
        rob.allocate(SimpleNamespace(tseq=2))
        assert rob.first_order_violation() is None
        rob.allocate(SimpleNamespace(tseq=2))
        bad = rob.first_order_violation()
        assert bad is not None and bad.tseq == 2

    def test_fu_frees_exactly_at_the_boundary_cycle(self):
        """A claimed unit is busy through ``free_at - 1`` and usable
        again *at* ``free_at`` — both off-by-one directions checked."""
        fu = FunctionalUnitPool(small_machine())
        op = int(OpClass.IALU)
        claimed = 0
        while fu.try_claim(op, 0):
            claimed += 1
        assert claimed > 0
        free_at = OP_INTERVAL[op]
        assert free_at > 0
        assert not fu.available(op, free_at - 1)
        assert fu.available(op, free_at)
        assert fu.try_claim(op, free_at)

    def test_lsq_forwards_only_strictly_older_stores(self):
        lsq = LoadStoreQueue(8)
        lsq.allocate(SimpleNamespace(tseq=5, is_store=True, addr=0x40))
        newer = SimpleNamespace(tseq=6, is_store=False, addr=0x40)
        same = SimpleNamespace(tseq=5, is_store=False, addr=0x40)
        assert lsq.can_forward(newer) is True
        assert lsq.can_forward(same) is False

    def test_flush_resumes_from_the_oldest_inflight_instruction(self):
        """With an empty ROB the front-end pipe holds the oldest
        squashed instruction; fetch must rewind to it (min, not
        max)."""
        cfg = small_machine()
        ts = ThreadState(0, mixed_trace(50), cfg)
        ts.fetch_idx = 10
        ts.pipe.append((3, SimpleNamespace(tseq=3)))
        resume = ts.flush_inflight(resume_cycle=20)
        assert resume == 3
        assert ts.fetch_idx == 3

"""ASCII chart and CSV export tests."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plot import ascii_chart, sweep_to_csv, to_csv
from repro.experiments.sweep import SweepResult
from repro.metrics.ipc import SimResult


def result():
    return FigureResult(
        figure="figureX", metric="demo", iq_sizes=(32, 64, 96),
        series={
            "traditional": [1.0, 1.1, 1.12],
            "2op_block": [0.9, 0.85, 0.84],
        },
    )


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(result())
        assert "o = 2op_block" in out
        assert "x = traditional" in out
        assert "figureX" in out

    def test_axis_labels_show_range(self):
        out = ascii_chart(result())
        assert "1.1" in out  # top label near max
        assert "32" in out and "96" in out

    def test_flat_series_does_not_crash(self):
        r = FigureResult(figure="f", metric="m", iq_sizes=(8, 16),
                         series={"a": [1.0, 1.0]})
        assert "a" in ascii_chart(r)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_chart(result(), width=4)

    def test_custom_dimensions(self):
        out = ascii_chart(result(), width=30, height=8)
        body = [l for l in out.splitlines() if l.startswith(" ") or "|" in l]
        assert len(body) >= 8


class TestCsv:
    def test_figure_csv(self):
        out = to_csv(result())
        lines = out.splitlines()
        assert lines[0] == "iq_size,2op_block,traditional"
        assert lines[1].startswith("32,0.9")
        assert len(lines) == 4

    def test_sweep_csv(self):
        sweep = SweepResult()
        sweep.results[("traditional", 32, "m1")] = SimResult(
            benchmarks=("a",), scheduler="traditional", iq_size=32,
            cycles=100, committed=(200,),
        )
        out = sweep_to_csv(sweep)
        assert out.splitlines()[0] == "scheduler,iq_size,mix,throughput_ipc"
        assert "traditional,32,m1,2.0" in out

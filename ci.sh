#!/usr/bin/env bash
# CI gate: tier-1 tests, lint (ruff + the custom repro.analysis pass),
# and a short fully-sanitized end-to-end simulation.
set -euo pipefail
cd "$(dirname "$0")"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== lint: ruff (generic hygiene) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks
else
    echo "ruff not installed; skipping (pip install .[lint])"
fi

echo "== lint: repro.analysis (simulator-specific rules) =="
python -m repro.analysis lint src/repro

echo "== sanitized smoke simulation (2-thread mix, 5000 cycles) =="
python - <<'PY'
from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.smt_core import SMTProcessor

cfg = paper_machine(scheduler="2op_ooo").replace(
    sanitize=True, sanitize_interval=16
)
traces = thread_traces(["parser", "vortex"], 6000, seed=0, warmup=2000)
core = SMTProcessor(cfg, traces, warmup=2000)
stats = core.run(max_insns=6000, max_cycles=5000)
assert stats.sanitizer_checks > 0, "sanitizer never ran"
assert stats.committed_total > 0, "nothing committed"
print(
    f"ok: {stats.cycles} cycles, {stats.committed_total} committed, "
    f"{stats.sanitizer_checks} sanitizer checks, no violations"
)
PY

echo "CI OK"

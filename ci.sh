#!/usr/bin/env bash
# CI gate: tier-1 tests, lint (ruff + the custom repro.analysis pass),
# the whole-program flow analysis (call-graph hotness, determinism
# taint, stage contracts, worker pickle safety),
# a short fully-sanitized end-to-end simulation, a 2-worker sweep smoke
# that asserts the result cache serves a warm rerun in full, an
# overload smoke that drives 3 submitters through a fair-share server
# with a 1-slot admission budget, a chaos
# smoke that asserts a fault-injected sweep (worker kills/hangs, cache
# corruption) still matches the fault-free golden run, and a perf gate
# that fails on a >15% cycles/s regression vs BENCH_sim_speed.json.
set -euo pipefail
cd "$(dirname "$0")"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== lint: ruff (generic hygiene) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks
else
    echo "ruff not installed; skipping (pip install .[lint])"
fi

echo "== lint: repro.analysis (simulator-specific rules) =="
python -m repro.analysis lint src/repro benchmarks

echo "== flow: repro.analysis (whole-program rules RPR009-RPR013) =="
# Interprocedural pass: transitive hot closure, determinism taint,
# stage access contracts, worker pickle safety. Accepted findings are
# pinned in results/flow_baseline.json (picked up automatically).
python -m repro.analysis flow src/repro

echo "== races: repro.analysis (static concurrency rules RPR014-RPR017) =="
# Context-aware pass over the same call graph: lockset consistency,
# lock-order cycles, fork safety, await atomicity in the serve/exec
# runtime. The committed baseline (results/races_baseline.json) is
# empty — any finding here is a new concurrency hazard.
python -m repro.analysis races src/repro

echo "== mutation smoke (pinned 25-mutant sample, 2 workers) =="
# Measures the detection power of everything above: a deterministic
# sample of microarchitecture-aware mutants injected into the pipeline
# hot closure, each of which must be killed by the static → sanitizer
# → stats → tests cascade or explicitly allowlisted in
# results/mutation_baseline.json (docs/analysis.md).
python -m repro.analysis mutate src/repro/pipeline \
    --sample 25 --seed 2006 --jobs 2 --require-all-killed

echo "== sanitized smoke simulation (2-thread mix, 5000 cycles) =="
python - <<'PY'
from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.smt_core import SMTProcessor

cfg = paper_machine(scheduler="2op_ooo").replace(
    sanitize=True, sanitize_interval=16
)
traces = thread_traces(["parser", "vortex"], 6000, seed=0, warmup=2000)
core = SMTProcessor(cfg, traces, warmup=2000)
stats = core.run(max_insns=6000, max_cycles=5000)
assert stats.sanitizer_checks > 0, "sanitizer never ran"
assert stats.committed_total > 0, "nothing committed"
print(
    f"ok: {stats.cycles} cycles, {stats.committed_total} committed, "
    f"{stats.sanitizer_checks} sanitizer checks, no violations"
)
PY

echo "== parallel sweep smoke (2 workers, then warm cache) =="
python - <<'PY'
import tempfile

from repro.config.presets import small_machine
from repro.exec import ExecutorConfig
from repro.experiments.sweep import run_sweep
from repro.workloads.mixes import TWO_THREAD_MIXES

kwargs = dict(
    mixes=TWO_THREAD_MIXES[:2], base_config=small_machine(),
    schedulers=("traditional", "2op_ooo"), iq_sizes=(8, 16),
    max_insns=500, seed=0,
)
with tempfile.TemporaryDirectory() as cache_dir:
    ex = ExecutorConfig(jobs=2, cache_dir=cache_dir)
    cold = run_sweep(**kwargs, executor=ex)
    warm = run_sweep(**kwargs, executor=ex)
assert cold.exec_report.simulated == len(cold.results), "cold run not cold"
assert warm.exec_report.simulated == 0, "warm rerun re-simulated"
assert warm.exec_report.cached == len(cold.results), "warm rerun missed cache"
assert warm.results == cold.results, "cache changed results"
print(
    f"ok: {len(cold.results)}-point grid on 2 workers; warm rerun served "
    f"{warm.exec_report.cached}/{warm.exec_report.total} from cache, "
    f"0 simulations"
)
PY

echo "== serve smoke (loopback sweep server + 2 worker agents) =="
# Boots a sweep server and 2 loopback workers, submits the same grid
# twice, and asserts the cold run matches the single-host golden run
# byte-for-byte and the warm re-submission simulates nothing — the
# shared cache served it in full (docs/distributed.md).
python -m repro.serve smoke --workers 2

echo "== serve overload smoke (3 submitters vs a 1-slot budget) =="
# Saturates a fair-share server with 3 concurrent submitters against a
# deliberately tiny in-flight budget: admission control must queue the
# overflow (not drop it), every submitter must finish byte-identically
# to its golden run with no starvation, and a warm resubmission must
# simulate nothing (docs/distributed.md, "Operating under load").
python -m repro.serve overload-smoke

echo "== chaos smoke (worker kills + hangs + cache corruption) =="
# Deterministic fault injection: the chaotic run must finish and be
# byte-identical to the fault-free golden run (docs/robustness.md).
REPRO_CHAOS="kill=0.3,hang=0.05,corrupt=0.5,delay=0.2,dup=0.2,seed=7" \
    python -m repro.exec chaos-smoke

echo "== perf gate (cycles/s vs BENCH_sim_speed.json) =="
# Fails on a >15% throughput regression against the committed baseline
# (docs/performance.md). Refresh deliberately with:
#   python -m repro.perf bench --update-baseline
python -m repro.perf gate

echo "CI OK"

# Developer entry points. `make ci` mirrors what ci.sh enforces.

PYTHONPATH := src
export PYTHONPATH

.PHONY: test lint flow races check-fast mutate mutate-smoke sanitize-smoke \
	bench-sanitizer figures figures-parallel cache-clear cache-verify \
	chaos-smoke serve-smoke serve-overload-smoke profile perf-bench \
	perf-gate ci

test:
	python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install .[lint])"; \
	fi
	python -m repro.analysis lint src/repro benchmarks

# Whole-program pass: call-graph hotness (RPR009), determinism taint
# (RPR010), stage access contracts (RPR011), worker pickle safety
# (RPR012), async blocking I/O in the sweep service (RPR013). Accepted
# legacy findings live in results/flow_baseline.json;
# refresh deliberately with:
#   python -m repro.analysis flow src/repro --update-baseline
flow:
	python -m repro.analysis flow src/repro

# Static concurrency pass: lockset consistency (RPR014), lock-order
# cycles (RPR015), fork safety (RPR016), await atomicity (RPR017)
# over the serve/exec runtime. The committed baseline
# (results/races_baseline.json) is empty and should stay that way;
# refresh deliberately with:
#   python -m repro.analysis races src/repro --update-baseline
races:
	python -m repro.analysis races src/repro

# Pre-push fast path: the three static passes narrowed to findings in
# files changed versus main (the whole program is still analysed —
# closures and contexts need every module — only reporting narrows).
check-fast:
	python -m repro.analysis lint src/repro benchmarks --changed-only
	python -m repro.analysis flow src/repro --changed-only
	python -m repro.analysis races src/repro --changed-only

# Full mutation run over the pipeline hot/contract closure: every
# operator at every site, pushed through the static → sanitizer →
# stats → tests oracle cascade (docs/analysis.md). Slow (minutes);
# cached outcomes make re-runs cheap. Gate against
# results/mutation_baseline.json; refresh deliberately with:
#   python -m repro.analysis mutate src/repro/pipeline --update-baseline
mutate:
	python -m repro.analysis mutate src/repro/pipeline --jobs 8

# The CI slice: a pinned deterministic 25-mutant sample that must be
# 100% killed-or-allowlisted.
mutate-smoke:
	python -m repro.analysis mutate src/repro/pipeline \
		--sample 25 --seed 2006 --jobs 2 --require-all-killed

figures:
	python -m pytest benchmarks/ --benchmark-only -q

# Same figures on 4 workers with the result cache on: cold runs scale
# with cores, reruns only simulate what changed (see docs/exec.md).
figures-parallel:
	REPRO_JOBS=4 REPRO_CACHE=1 python -m pytest benchmarks/ \
		--benchmark-only -q

cache-clear:
	python -m repro.exec cache clear

cache-verify:
	python -m repro.exec cache verify

# Assert the headline robustness invariant: a sweep under injected
# worker kills/hangs and cache corruption matches the fault-free run
# byte for byte (see docs/robustness.md).
chaos-smoke:
	REPRO_CHAOS="kill=0.3,hang=0.05,corrupt=0.5,delay=0.2,dup=0.2,seed=7" \
		python -m repro.exec chaos-smoke

# Distributed analogue of chaos-smoke: boot a loopback sweep server
# with 2 worker agents, submit a grid cold and warm, and assert both
# runs are byte-identical to the single-host golden run with the warm
# re-submission simulating nothing (see docs/distributed.md). Set
# REPRO_CHAOS (incl. net_drop/net_dup/net_delay) for a fault drill.
serve-smoke:
	python -m repro.serve smoke --workers 2

# Overload drill: 3 submitters race the same 1-slot job budget through
# a fair-share server; asserts backpressure engages (at least one
# "queued" admission), every submitter completes byte-identically to
# its golden run, no submitter is starved, and a warm resubmission
# simulates nothing (docs/distributed.md, "Operating under load").
serve-overload-smoke:
	python -m repro.serve overload-smoke

# cProfile hotspots + per-stage wall-clock breakdown of the cycle loop
# (docs/performance.md).
profile:
	python -m repro.perf profile

perf-bench:
	python -m repro.perf bench

# Fail when simulator throughput regresses >15% against the committed
# BENCH_sim_speed.json baseline. Refresh deliberately with:
#   python -m repro.perf bench --update-baseline
perf-gate:
	python -m repro.perf gate

sanitize-smoke:
	python -m repro.experiments.cli mix parser vortex \
		--scheduler 2op_ooo --sanitize --insns 2000

bench-sanitizer:
	python -m pytest benchmarks/bench_sanitizer_overhead.py \
		--benchmark-only -q -s

ci:
	./ci.sh

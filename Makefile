# Developer entry points. `make ci` mirrors what ci.sh enforces.

PYTHONPATH := src
export PYTHONPATH

.PHONY: test lint sanitize-smoke bench-sanitizer ci

test:
	python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install .[lint])"; \
	fi
	python -m repro.analysis lint src/repro

sanitize-smoke:
	python -m repro.experiments.cli mix parser vortex \
		--scheduler 2op_ooo --sanitize --insns 2000

bench-sanitizer:
	python -m pytest benchmarks/bench_sanitizer_overhead.py \
		--benchmark-only -q -s

ci:
	./ci.sh
